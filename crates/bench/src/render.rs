//! Offline dashboard rendering: a run journal in, a directory of SVG charts
//! and a self-contained `index.html` out.
//!
//! Everything renders from the journal alone — trajectory charts and
//! reliability diagrams come from `iteration complete` / `calibration bin`
//! events, selection maps from `clip selected` events, and clip geometry is
//! re-synthesized deterministically from the spec and seed carried by
//! `benchmark ready` events. No network, no extra artifacts, and the same
//! journal always renders byte-identical output (the `hotspot-viz`
//! determinism contract).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use hotspot_litho::{DefectKind, LithoSimulator};
use hotspot_viz::{
    fmt_num, ramp_color, BarChart, FlameChart, FlameFrame, Heatmap, LineChart, RelBin,
    ReliabilityChart, Series, Svg, TextAnchor,
};

use crate::journal::{
    method_for_selector, BenchmarkRecord, CalibrationBinRecord, Journal, SelectionRecord,
    ShardIncidentRecord,
};

/// Knobs for [`render_dashboard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Maximum clip-geometry renderings (hotspot-labelled clips first).
    pub max_clips: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { max_clips: 8 }
    }
}

/// What [`render_dashboard`] wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenderSummary {
    /// Files created inside the output directory, in creation order
    /// (`index.html` last).
    pub files: Vec<String>,
    /// Runs found in the journal.
    pub runs: usize,
    /// Clip geometries rendered.
    pub clips: usize,
}

/// Renders the full dashboard for `journal` into `out_dir` (created if
/// missing): per-method accuracy and Litho# bars, per-run trajectory
/// charts, selection maps, reliability diagrams, clip geometry renderings,
/// and an `index.html` inlining every SVG.
///
/// # Errors
///
/// Returns a human-readable message when the journal has no runs or a file
/// cannot be written. Missing optional record kinds (selections, bins,
/// benchmark specs) degrade to omitted sections, never to an error.
pub fn render_dashboard(
    journal: &Journal,
    out_dir: &Path,
    options: &RenderOptions,
) -> Result<RenderSummary, String> {
    let runs = journal.runs();
    if runs.is_empty() {
        return Err("journal contains no `run complete` events; nothing to render".to_string());
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;

    let iterations = journal.iterations();
    let selections = journal.selections();
    let bins = journal.calibration_bins();
    let benchmarks: BTreeMap<String, BenchmarkRecord> = journal
        .benchmarks()
        .into_iter()
        .map(|b| (b.benchmark.clone(), b))
        .collect();
    let run_bench = run_to_benchmark(journal);

    // (file name, svg text) in final dashboard order.
    let mut files: Vec<(String, String)> = Vec::new();

    // Per-method headline bars.
    if let Some((accuracy, litho)) = method_bars(&runs) {
        files.push(("methods_accuracy.svg".to_string(), accuracy));
        files.push(("methods_litho.svg".to_string(), litho));
    }

    // Shard health: the coordinator's dead/hung-worker incident log, by
    // shard. Canonical journals withhold the coordinator target, so the
    // panel only appears on provenance journals that saw an incident.
    let incidents = journal.shard_incidents();
    if let Some(svg) = shard_health(&incidents) {
        files.push(("shard_health.svg".to_string(), svg));
    }

    // Performance: an icicle flame graph over the journal's span profile.
    // Canonical journals withhold the profile target, so this panel only
    // appears on provenance journals — canonical dashboards stay
    // byte-identical with and without tracing.
    if let Some(svg) = span_flame(journal) {
        files.push(("perf_flame.svg".to_string(), svg));
    }

    // Per-run panels, ordered by run id for stable output.
    let mut run_ids: Vec<u64> = runs.iter().map(|r| r.run_id).collect();
    run_ids.sort_unstable();
    run_ids.dedup();
    for &run_id in &run_ids {
        let label = run_label(&runs, &run_bench, run_id);
        let iters: Vec<_> = iterations.iter().filter(|i| i.run_id == run_id).collect();
        if !iters.is_empty() {
            let mut svg = Svg::new(640.0, 3.0 * 280.0);
            let panel = |title: &str, values: Vec<(f64, f64)>| {
                LineChart::new(
                    format!("{label} — {title}"),
                    "iteration",
                    title,
                    vec![Series::new(label.clone(), values)],
                )
            };
            panel(
                "temperature",
                iters
                    .iter()
                    .map(|i| (i.iteration as f64, i.temperature))
                    .collect(),
            )
            .render_into(&mut svg, 0.0, 0.0);
            panel(
                "ECE",
                iters.iter().map(|i| (i.iteration as f64, i.ece)).collect(),
            )
            .render_into(&mut svg, 0.0, 280.0);
            panel(
                "train loss",
                iters
                    .iter()
                    .map(|i| (i.iteration as f64, i.train_loss))
                    .collect(),
            )
            .render_into(&mut svg, 0.0, 560.0);
            files.push((format!("run{run_id:03}_trajectory.svg"), svg.finish()));
        }

        let picks: Vec<&SelectionRecord> =
            selections.iter().filter(|s| s.run_id == run_id).collect();
        if !picks.is_empty() {
            files.push((
                format!("run{run_id:03}_selection.svg"),
                selection_map(&label, &picks),
            ));
        }

        let run_bins: Vec<&CalibrationBinRecord> =
            bins.iter().filter(|b| b.run_id == run_id).collect();
        if !run_bins.is_empty() {
            files.push((
                format!("run{run_id:03}_reliability.svg"),
                reliability_panels(&label, &run_bins),
            ));
        }
    }

    // Clip geometry: selected clips, hotspot labels first, capped.
    let mut clip_count = 0usize;
    for (name, svg) in clip_renderings(&selections, &run_bench, &benchmarks, options.max_clips)? {
        files.push((name, svg));
        clip_count += 1;
    }

    let mut summary = RenderSummary {
        files: Vec::with_capacity(files.len() + 1),
        runs: run_ids.len(),
        clips: clip_count,
    };
    for (name, svg) in &files {
        std::fs::write(out_dir.join(name), svg).map_err(|e| format!("cannot write {name}: {e}"))?;
        summary.files.push(name.clone());
    }
    let degraded = runs.iter().filter(|r| r.degraded).count();
    let index = index_html(&files, degraded);
    std::fs::write(out_dir.join("index.html"), index)
        .map_err(|e| format!("cannot write index.html: {e}"))?;
    summary.files.push("index.html".to_string());
    Ok(summary)
}

/// Maps each run id to the benchmark generated most recently before the
/// run started, by walking the journal's records in order.
fn run_to_benchmark(journal: &Journal) -> BTreeMap<u64, String> {
    let mut current: Option<String> = None;
    let mut map = BTreeMap::new();
    for event in journal.events() {
        let message = event.get("message").and_then(|m| m.as_str());
        if message == Some(hotspot_telemetry::names::EVENT_BENCHMARK_READY) {
            current = event
                .get("benchmark")
                .and_then(|b| b.as_str())
                .map(str::to_string);
        } else if message == Some("run started") {
            if let (Some(run_id), Some(bench)) =
                (event.get("run_id").and_then(|v| v.as_u64()), &current)
            {
                map.insert(run_id, bench.clone());
            }
        }
    }
    map
}

/// Human label for a run: method (via its selector) plus benchmark, with a
/// visible `(degraded)` marker when the run lost labels to oracle faults —
/// a degraded trajectory must never pass for a healthy one.
fn run_label(
    runs: &[crate::journal::RunRecord],
    run_bench: &BTreeMap<u64, String>,
    run_id: u64,
) -> String {
    let record = runs.iter().find(|r| r.run_id == run_id);
    let method = record
        .map(|r| {
            method_for_selector(&r.selector)
                .unwrap_or(r.selector.as_str())
                .to_string()
        })
        .unwrap_or_else(|| format!("run {run_id}"));
    let degraded = if record.is_some_and(|r| r.degraded) {
        " (degraded)"
    } else {
        ""
    };
    match run_bench.get(&run_id) {
        Some(bench) => format!("{method} on {bench}{degraded}"),
        None => format!("{method}{degraded}"),
    }
}

/// Per-shard fault-count panels from the coordinator's incident log: how
/// often each shard's worker was lost (dead or hung), how many outcomes its
/// checkpoint commits salvaged, and how many clips were reassigned to
/// recovery rounds. `None` when the journal recorded no incidents.
fn shard_health(incidents: &[ShardIncidentRecord]) -> Option<String> {
    if incidents.is_empty() {
        return None;
    }
    // shard -> (workers lost, outcomes salvaged, clips orphaned).
    let mut by_shard: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for incident in incidents {
        let entry = by_shard.entry(incident.shard).or_default();
        entry.0 += 1;
        entry.1 += incident.salvaged;
        entry.2 += incident.orphaned;
    }
    let bars = |pick: fn(&(u64, u64, u64)) -> u64| -> Vec<(String, f64)> {
        by_shard
            .iter()
            .map(|(shard, counts)| (format!("shard {shard}"), pick(counts) as f64))
            .collect()
    };
    let mut svg = Svg::new(3.0 * 420.0, 260.0);
    BarChart::new("workers lost", "incidents", bars(|c| c.0)).render_into(&mut svg, 0.0, 0.0);
    BarChart::new("outcomes salvaged", "clips", bars(|c| c.1)).render_into(&mut svg, 420.0, 0.0);
    BarChart::new("clips reassigned", "clips", bars(|c| c.2)).render_into(&mut svg, 840.0, 0.0);
    Some(svg.finish())
}

/// An icicle flame graph of total time per span path, from the journal's
/// `profile` debug events (worker spans replayed by the shard coordinator
/// included). `None` when the journal carries no span profile.
fn span_flame(journal: &Journal) -> Option<String> {
    let spans = journal.span_durations_us();
    if spans.is_empty() {
        return None;
    }
    // BTreeMap iteration gives sorted paths, so sibling order — and with it
    // the rendered bytes — is a pure function of the journal.
    let paths: Vec<(String, f64)> = spans
        .iter()
        .map(|(path, durations)| (path.clone(), durations.iter().sum::<f64>() / 1000.0))
        .collect();
    let chart = FlameChart::new(
        "span time (total ms per path)",
        "ms",
        FlameFrame::from_paths(&paths),
    );
    let mut svg = Svg::new(chart.width, chart.height());
    chart.render_into(&mut svg, 0.0, 0.0);
    Some(svg.finish())
}

/// Mean accuracy (%) and Litho# bar charts over the journal's methods.
fn method_bars(runs: &[crate::journal::RunRecord]) -> Option<(String, String)> {
    let mut sums: BTreeMap<String, (f64, f64, usize)> = BTreeMap::new();
    for run in runs {
        let label = method_for_selector(&run.selector)
            .unwrap_or(run.selector.as_str())
            .to_string();
        let entry = sums.entry(label).or_insert((0.0, 0.0, 0));
        entry.0 += run.accuracy;
        entry.1 += run.litho as f64;
        entry.2 += 1;
    }
    if sums.is_empty() {
        return None;
    }
    // Table II order first, stragglers alphabetically after.
    let preferred = ["Ours", "TS", "QP", "Random"];
    let mut labels: Vec<String> = preferred
        .iter()
        .filter(|m| sums.contains_key(**m))
        .map(|m| (*m).to_string())
        .collect();
    labels.extend(
        sums.keys()
            .filter(|k| !preferred.contains(&k.as_str()))
            .cloned(),
    );
    let bar = |title: &str, y: &str, pick: fn(&(f64, f64, usize)) -> f64| {
        BarChart::new(
            title,
            y,
            labels.iter().map(|l| (l.clone(), pick(&sums[l]))).collect(),
        )
        .to_svg()
    };
    Some((
        bar("mean detection accuracy", "%", |(acc, _, n)| {
            100.0 * acc / *n as f64
        }),
        bar("mean litho-clip overhead", "Litho#", |(_, litho, n)| {
            litho / *n as f64
        }),
    ))
}

/// The selection map of one run: the uncertainty–diversity plane with a
/// binned-density background and each pick coloured by iteration.
fn selection_map(label: &str, picks: &[&SelectionRecord]) -> String {
    let points: Vec<(f64, f64)> = picks.iter().map(|s| (s.uncertainty, s.diversity)).collect();
    let heatmap = Heatmap::new(
        format!("{label} — selection map"),
        "uncertainty",
        "diversity",
        points,
    );
    let mut svg = Svg::new(heatmap.width, heatmap.height + 22.0);
    let (x_scale, y_scale) = heatmap.render_into(&mut svg, 0.0, 0.0);
    let max_iteration = picks.iter().map(|s| s.iteration).max().unwrap_or(1).max(1);
    for pick in picks {
        if !(pick.uncertainty.is_finite() && pick.diversity.is_finite()) {
            continue;
        }
        let t = if max_iteration > 1 {
            (pick.iteration.saturating_sub(1)) as f64 / (max_iteration - 1) as f64
        } else {
            1.0
        };
        svg.circle_outline(
            x_scale.map(pick.uncertainty),
            y_scale.map(pick.diversity),
            2.4,
            &ramp_color(t),
            1.4,
        );
    }
    svg.text(
        52.0,
        heatmap.height + 10.0,
        9.0,
        TextAnchor::Start,
        "#334155",
        &format!(
            "{} picks over {} iterations (light = early, dark = late)",
            picks.len(),
            max_iteration
        ),
    );
    svg.finish()
}

/// Small-multiple reliability diagrams for one run: `before`, up to four
/// evenly spaced in-loop measurements, and `after`.
fn reliability_panels(label: &str, bins: &[&CalibrationBinRecord]) -> String {
    // Measurement keys in stage order; iteration measurements sorted.
    let mut iteration_keys: Vec<u64> = bins
        .iter()
        .filter(|b| b.stage == "iteration")
        .map(|b| b.iteration)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    if iteration_keys.len() > 4 {
        // First, last, and two evenly spaced between.
        let n = iteration_keys.len();
        let chosen: Vec<u64> = (0..4).map(|i| iteration_keys[i * (n - 1) / 3]).collect();
        iteration_keys = chosen;
    }
    let mut panels: Vec<(String, Vec<&CalibrationBinRecord>)> = Vec::new();
    let stage_bins = |stage: &str, iteration: u64| -> Vec<&CalibrationBinRecord> {
        bins.iter()
            .filter(|b| b.stage == stage && b.iteration == iteration)
            .copied()
            .collect()
    };
    let before = stage_bins("before", 0);
    if !before.is_empty() {
        panels.push(("before (T = 1)".to_string(), before));
    }
    for &it in &iteration_keys {
        panels.push((format!("iteration {it}"), stage_bins("iteration", it)));
    }
    let after = stage_bins("after", 0);
    if !after.is_empty() {
        panels.push(("after".to_string(), after));
    }

    let width = 300.0 * panels.len().max(1) as f64;
    let mut svg = Svg::new(width + 16.0, 280.0 + 28.0);
    svg.text(
        8.0,
        16.0,
        12.0,
        TextAnchor::Start,
        "#0f172a",
        &format!("{label} — reliability"),
    );
    for (i, (title, panel_bins)) in panels.iter().enumerate() {
        let rel_bins: Vec<RelBin> = panel_bins
            .iter()
            .map(|b| RelBin {
                lower: b.lower,
                upper: b.upper,
                count: b.count,
                confidence: b.confidence,
                accuracy: b.accuracy,
            })
            .collect();
        let total: u64 = rel_bins.iter().map(|b| b.count).sum();
        let ece = if total > 0 {
            rel_bins
                .iter()
                .map(|b| b.count as f64 / total as f64 * (b.confidence - b.accuracy).abs())
                .sum()
        } else {
            0.0
        };
        ReliabilityChart::new(title.clone(), rel_bins, ece).render_into(
            &mut svg,
            8.0 + 300.0 * i as f64,
            24.0,
        );
    }
    svg.finish()
}

/// Selected-clip geometry renderings: metal from the re-synthesized raster,
/// the core window, and simulated defect overlays. Hotspot-labelled clips
/// come first; at most `max_clips` render. Returns `(file name, svg)` pairs.
fn clip_renderings(
    selections: &[SelectionRecord],
    run_bench: &BTreeMap<u64, String>,
    benchmarks: &BTreeMap<String, BenchmarkRecord>,
    max_clips: usize,
) -> Result<Vec<(String, String)>, String> {
    // Candidate (benchmark, clip) pairs in first-selected order.
    let mut seen = BTreeSet::new();
    let mut candidates: Vec<(String, usize)> = Vec::new();
    for s in selections {
        let Some(bench) = run_bench.get(&s.run_id) else {
            continue;
        };
        if !benchmarks.contains_key(bench) {
            continue;
        }
        let key = (bench.clone(), s.clip as usize);
        if seen.insert(key.clone()) {
            candidates.push(key);
        }
    }
    if candidates.is_empty() || max_clips == 0 {
        return Ok(Vec::new());
    }

    // Re-synthesize each referenced benchmark once.
    let mut generated: BTreeMap<String, GeneratedBenchmark> = BTreeMap::new();
    for (name, _) in &candidates {
        if generated.contains_key(name) {
            continue;
        }
        let record = &benchmarks[name];
        let spec = BenchmarkSpec {
            name: record.benchmark.clone(),
            tech: Tech::from_name(&record.tech).map_err(|e| e.to_string())?,
            hotspots: record.hotspots as usize,
            non_hotspots: record.non_hotspots as usize,
            dup_rate: record.dup_rate,
            near_miss_rate: record.near_miss_rate,
        };
        let bench = GeneratedBenchmark::generate(&spec, record.seed)
            .map_err(|e| format!("cannot re-synthesize benchmark {name}: {e}"))?;
        generated.insert(name.clone(), bench);
    }

    // Hotspot-labelled candidates first, preserving selection order inside
    // each class; then cap.
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for (bench_name, clip) in candidates {
        let bench = &generated[&bench_name];
        if clip >= bench.len() {
            continue;
        }
        if bench.labels()[clip].is_hotspot() {
            hot.push((bench_name, clip));
        } else {
            cold.push((bench_name, clip));
        }
    }
    hot.extend(cold);
    hot.truncate(max_clips);

    let mut out = Vec::with_capacity(hot.len());
    for (bench_name, clip) in hot {
        let bench = &generated[&bench_name];
        out.push((
            format!("clip_{}_{clip:05}.svg", file_slug(&bench_name)),
            render_clip(bench, clip),
        ));
    }
    Ok(out)
}

/// One clip's geometry: metal rectangles recovered from the deterministic
/// raster, the core window outline, and the litho simulator's defects
/// (bridge/pinch) marked at their centroids.
fn render_clip(bench: &GeneratedBenchmark, clip: usize) -> String {
    let raster = bench.clip_raster(clip);
    let region = raster.region();
    let core = bench.core();
    let sim = LithoSimulator::new(bench.spec().tech.litho_config());
    let report = sim.analyze(&raster, core);

    let plot = 360.0;
    let pad = 24.0;
    let scale = plot / region.width().max(1) as f64;
    let to_x = |x: i64| pad + (x - region.x0()) as f64 * scale;
    // SVG y grows downward; raster row 0 is the region's bottom.
    let to_y = |y: i64| pad + (region.y1() - y) as f64 * scale;

    let mut svg = Svg::new(plot + 2.0 * pad, plot + 2.0 * pad + 36.0);
    svg.rect(pad, pad, plot, plot, "#f8fafc");
    for rect in raster.filled_rects(0.5) {
        svg.rect(
            to_x(rect.x0()),
            to_y(rect.y1()),
            rect.width() as f64 * scale,
            rect.height() as f64 * scale,
            "#1e293b",
        );
    }
    svg.rect_outline(
        to_x(core.x0()),
        to_y(core.y1()),
        core.width() as f64 * scale,
        core.height() as f64 * scale,
        "#2563eb",
        1.2,
        Some(5.0),
    );
    for defect in report.defects() {
        let color = match defect.kind {
            DefectKind::Bridge => "#dc2626",
            DefectKind::Pinch => "#ea580c",
        };
        svg.circle_outline(
            to_x(defect.location.x),
            to_y(defect.location.y),
            7.0,
            color,
            1.8,
        );
    }
    svg.rect_outline(pad, pad, plot, plot, "#334155", 1.0, None);
    let label = if bench.labels()[clip].is_hotspot() {
        "hotspot"
    } else {
        "non-hotspot"
    };
    svg.text(
        pad,
        plot + 2.0 * pad + 14.0,
        11.0,
        TextAnchor::Start,
        "#0f172a",
        &format!(
            "{} clip {clip} — {label}, {} defect(s), {} nm window",
            bench.spec().name,
            report.defects().len(),
            region.width()
        ),
    );
    svg.text(
        pad,
        plot + 2.0 * pad + 28.0,
        9.0,
        TextAnchor::Start,
        "#334155",
        &format!(
            "dashed = core, red = bridge, orange = pinch, density {}",
            fmt_num(raster.density())
        ),
    );
    svg.finish()
}

/// Lowercase alphanumeric-and-dash form of a benchmark name for file names.
fn file_slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// A single-page dashboard inlining every SVG, with no external resources.
/// `degraded_runs` adds a visible warning banner so fault-degraded
/// campaigns never render indistinguishably from healthy ones.
fn index_html(files: &[(String, String)], degraded_runs: usize) -> String {
    let mut html = String::new();
    html.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>lithohd dashboard</title>\n<style>\n\
         body { font-family: Helvetica, Arial, sans-serif; margin: 24px; color: #0f172a; }\n\
         h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }\n\
         figure { display: inline-block; margin: 8px; vertical-align: top; }\n\
         figcaption { font-size: 11px; color: #334155; margin-top: 2px; }\n\
         .warn { background: #fef3c7; border: 1px solid #d97706; color: #92400e;\n\
                 padding: 8px 12px; border-radius: 4px; }\n\
         </style>\n</head>\n<body>\n<h1>lithohd run dashboard</h1>\n\
         <p>Rendered offline from the run journal by <code>lithohd-report render</code>.</p>\n",
    );
    if degraded_runs > 0 {
        let _ = writeln!(
            html,
            "<p class=\"warn\">warning: {degraded_runs} run(s) degraded under oracle \
             faults (labels lost after retries); their charts are marked \
             <em>(degraded)</em> below.</p>"
        );
    }
    let section = |html: &mut String, title: &str| {
        let _ = writeln!(html, "<h2>{title}</h2>");
    };
    let mut current = "";
    for (name, svg) in files {
        let kind = if name.starts_with("methods_") {
            "Methods"
        } else if name.starts_with("shard_") {
            "Shard health"
        } else if name.starts_with("perf_") {
            "Performance"
        } else if name.starts_with("clip_") {
            "Selected clips"
        } else {
            "Runs"
        };
        if kind != current {
            section(&mut html, kind);
            current = kind;
        }
        let _ = writeln!(
            html,
            "<figure>{svg}<figcaption>{name}</figcaption></figure>"
        );
    }
    html.push_str("</body>\n</html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selection(run_id: u64, iteration: u64, clip: u64) -> SelectionRecord {
        SelectionRecord {
            run_id,
            iteration,
            clip,
            rank: 0,
            uncertainty: 0.5,
            diversity: 0.5,
        }
    }

    #[test]
    fn selection_map_is_deterministic_and_nan_free() {
        let picks = [
            selection(1, 1, 10),
            selection(1, 2, 11),
            SelectionRecord {
                uncertainty: f64::NAN,
                ..selection(1, 3, 12)
            },
        ];
        let refs: Vec<&SelectionRecord> = picks.iter().collect();
        let a = selection_map("Ours on X", &refs);
        let b = selection_map("Ours on X", &refs);
        assert_eq!(a, b);
        assert!(!a.contains("NaN"));
        assert!(a.contains("3 picks over 3 iterations"));
    }

    #[test]
    fn reliability_panels_pick_before_iterations_after() {
        let bin = |stage: &str, iteration: u64| CalibrationBinRecord {
            run_id: 1,
            stage: stage.to_string(),
            iteration,
            bin: 9,
            lower: 0.9,
            upper: 1.0,
            count: 5,
            confidence: 0.95,
            accuracy: 0.9,
        };
        let bins = [
            bin("before", 0),
            bin("iteration", 1),
            bin("iteration", 2),
            bin("after", 0),
        ];
        let refs: Vec<&CalibrationBinRecord> = bins.iter().collect();
        let svg = reliability_panels("Ours", &refs);
        assert!(svg.contains("before (T = 1)"));
        assert!(svg.contains("iteration 1") && svg.contains("iteration 2"));
        assert!(svg.contains(">after<"));
    }

    #[test]
    fn degraded_runs_are_marked_in_labels_and_banner() {
        let run = crate::journal::RunRecord {
            run_id: 4,
            selector: "entropy".to_string(),
            accuracy: 0.9,
            litho: 100,
            false_alarms: 0,
            ece_before: 0.1,
            ece_after: 0.05,
            degraded: true,
            label_failures: 3,
            oracle_retries: 5,
            oracle_giveups: 3,
            quorum_votes: 0,
            elapsed_ms: 10,
        };
        let label = run_label(std::slice::from_ref(&run), &BTreeMap::new(), 4);
        assert_eq!(label, "Ours (degraded)");
        let healthy = crate::journal::RunRecord {
            degraded: false,
            ..run
        };
        assert_eq!(run_label(&[healthy], &BTreeMap::new(), 4), "Ours");

        let banner = index_html(&[], 2);
        assert!(banner.contains("2 run(s) degraded"));
        assert!(!index_html(&[], 0).contains("degraded"));
    }

    #[test]
    fn shard_health_aggregates_per_shard_and_is_deterministic() {
        assert!(shard_health(&[]).is_none());
        let incident = |shard: u64, salvaged: u64, orphaned: u64| ShardIncidentRecord {
            batch: 1,
            shard,
            dead: true,
            salvaged,
            orphaned,
        };
        let incidents = [incident(1, 3, 2), incident(0, 0, 5), incident(1, 1, 0)];
        let a = shard_health(&incidents).unwrap();
        let b = shard_health(&incidents).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("workers lost"));
        assert!(a.contains("outcomes salvaged"));
        assert!(a.contains("clips reassigned"));
        assert!(a.contains("shard 0") && a.contains("shard 1"));
    }

    #[test]
    fn span_flame_nests_profile_paths_and_is_deterministic() {
        let text = concat!(
            r#"{"type":"event","target":"profile","message":"run/iteration/nn.train","span":"run/iteration/nn.train","duration_us":1500}"#,
            "\n",
            r#"{"type":"event","target":"profile","message":"run/iteration/select","span":"run/iteration/select","duration_us":500}"#,
            "\n",
        );
        let journal = Journal::parse_str(text);
        let a = span_flame(&journal).unwrap();
        let b = span_flame(&journal).unwrap();
        assert_eq!(a, b);
        for label in ["run", "iteration", "nn.train", "select"] {
            assert!(a.contains(&format!(">{label}<")), "missing {label}");
        }
        // A journal with no profile events (canonical) renders no panel.
        assert!(span_flame(&Journal::parse_str("")).is_none());
    }

    #[test]
    fn file_slug_is_filesystem_safe() {
        assert_eq!(file_slug("ICCAD16-2"), "iccad16-2");
        assert_eq!(file_slug("a b/c"), "a-b-c");
    }

    #[test]
    fn empty_journal_is_an_error() {
        let journal = Journal::parse_str("");
        let err = render_dashboard(
            &journal,
            Path::new("/nonexistent/never-created"),
            &RenderOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("no `run complete`"));
    }
}
