use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// One row of a rendered experiment table: a label plus per-column
/// `(accuracy, litho)` cells.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label (benchmark name, "Average", "Ratio", …).
    pub label: String,
    /// `(accuracy, litho)` cells, one per method column.
    pub cells: Vec<(f64, f64)>,
    /// Whether the first cell component is a fraction to render as a
    /// percentage (`true` for data rows) or already a plain ratio (`false`
    /// for the "Ratio" summary row).
    pub percent: bool,
}

/// Renders a Table II/III-style table: one column pair (`Acc(%)`, `Litho#`)
/// per method, rows per benchmark.
///
/// # Panics
///
/// Panics when a row has a different number of cells than there are methods.
pub fn render_table(methods: &[&str], rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "Benchmark");
    for m in methods {
        let _ = write!(out, " | {:^19}", m);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<12}", "");
    for _ in methods {
        let _ = write!(out, " | {:>8} {:>10}", "Acc(%)", "Litho#");
    }
    let _ = writeln!(out);
    let dash_width = 12 + methods.len() * 22;
    let _ = writeln!(out, "{}", "-".repeat(dash_width));
    for row in rows {
        assert_eq!(row.cells.len(), methods.len(), "row width mismatch");
        let _ = write!(out, "{:<12}", row.label);
        for &(acc, litho) in &row.cells {
            if row.percent {
                let _ = write!(out, " | {:>8.2} {:>10.1}", acc * 100.0, litho);
            } else {
                let _ = write!(out, " | {:>8.3} {:>10.3}", acc, litho);
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Builds the paper's "Average" and "Ratio" summary rows from per-benchmark
/// rows: averages are plain means; ratios normalise each method's averages
/// by the last column's (the paper normalises by "Ours").
pub fn ratio_row(rows: &[TableRow]) -> (TableRow, TableRow) {
    assert!(!rows.is_empty(), "need at least one row");
    let columns = rows[0].cells.len();
    let mut avg = vec![(0.0f64, 0.0f64); columns];
    for row in rows {
        for (a, &(acc, litho)) in avg.iter_mut().zip(&row.cells) {
            a.0 += acc;
            a.1 += litho;
        }
    }
    for a in &mut avg {
        a.0 /= rows.len() as f64;
        a.1 /= rows.len() as f64;
    }
    let (ref_acc, ref_litho) = avg[columns - 1];
    let ratio: Vec<(f64, f64)> = avg
        .iter()
        .map(|&(acc, litho)| {
            (
                if ref_acc > 0.0 { acc / ref_acc } else { 0.0 },
                if ref_litho > 0.0 {
                    litho / ref_litho
                } else {
                    0.0
                },
            )
        })
        .collect();
    (
        TableRow {
            label: "Average".to_owned(),
            cells: avg,
            percent: true,
        },
        TableRow {
            label: "Ratio".to_owned(),
            cells: ratio,
            percent: false,
        },
    )
}

/// Writes a serialisable result to `<dir>/<name>.json`, creating the
/// directory when needed.
///
/// # Panics
///
/// Panics on I/O failure — experiment binaries want loud failures.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    // lithohd-lint: allow(panic-safety) — documented: experiment binaries want loud I/O failures
    std::fs::create_dir_all(dir).expect("create experiment output directory");
    let path = dir.join(format!("{name}.json"));
    // lithohd-lint: allow(panic-safety) — documented: experiment binaries want loud I/O failures
    let file = std::fs::File::create(&path).expect("create experiment output file");
    // lithohd-lint: allow(panic-safety) — documented: experiment binaries want loud I/O failures
    serde_json::to_writer_pretty(file, value).expect("serialise experiment result");
    hotspot_telemetry::info(
        "bench.report",
        "wrote result file",
        &[("path", path.display().to_string().into())],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<TableRow> {
        vec![
            TableRow {
                label: "B1".to_owned(),
                cells: vec![(1.0, 100.0), (0.9, 50.0)],
                percent: true,
            },
            TableRow {
                label: "B2".to_owned(),
                cells: vec![(0.8, 300.0), (0.7, 150.0)],
                percent: true,
            },
        ]
    }

    #[test]
    fn render_contains_all_cells() {
        let table = render_table(&["PM", "Ours"], &rows());
        assert!(table.contains("B1"));
        assert!(table.contains("100.0"));
        assert!(table.contains("90.00"));
        assert!(table.contains("Ours"));
    }

    #[test]
    fn averages_and_ratios() {
        let (avg, ratio) = ratio_row(&rows());
        assert!((avg.cells[0].0 - 0.9).abs() < 1e-12);
        assert!((avg.cells[0].1 - 200.0).abs() < 1e-12);
        assert!((avg.cells[1].0 - 0.8).abs() < 1e-12);
        // Ratios are normalised by the last column.
        assert!((ratio.cells[1].0 - 1.0).abs() < 1e-12);
        assert!((ratio.cells[1].1 - 1.0).abs() < 1e-12);
        assert!((ratio.cells[0].0 - 0.9 / 0.8).abs() < 1e-12);
        assert!((ratio.cells[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn render_rejects_ragged_rows() {
        let _ = render_table(&["only-one"], &rows());
    }

    #[test]
    fn write_json_roundtrip() {
        // Key the directory on the pid so concurrent `cargo test` processes
        // (e.g. a CI retry racing a stale run) never share the output file.
        let dir = std::env::temp_dir().join(format!("hotspot-bench-test-{}", std::process::id()));
        write_json(&dir, "unit", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(text.contains('1'));
    }
}
