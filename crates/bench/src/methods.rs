use hotspot_active::{
    BatchSelector, CheckpointHook, EntropySelector, NoCheckpoint, RandomSelector, SamplingConfig,
    SamplingFramework, UncertaintySelector,
};
use hotspot_baselines::{PatternMatcher, QpSelector};
use hotspot_layout::GeneratedBenchmark;
use hotspot_litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The learning-based sampling methods of Table II (and Fig. 4 / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActiveMethod {
    /// The paper's entropy-based sampler.
    Ours,
    /// Calibrated uncertainty only ("TS").
    Ts,
    /// The QP batch selector of \[14\].
    Qp,
    /// Uniform random batches.
    Random,
}

impl ActiveMethod {
    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            ActiveMethod::Ours => "Ours",
            ActiveMethod::Ts => "TS",
            ActiveMethod::Qp => "QP",
            ActiveMethod::Random => "Random",
        }
    }

    /// Builds the corresponding batch selector.
    pub fn selector(self) -> Box<dyn BatchSelector> {
        match self {
            ActiveMethod::Ours => Box::new(EntropySelector::new()),
            ActiveMethod::Ts => Box::new(UncertaintySelector::new()),
            ActiveMethod::Qp => Box::new(QpSelector::new()),
            ActiveMethod::Random => Box::new(RandomSelector::new()),
        }
    }
}

/// One (method, benchmark) result cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method label.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Litho-clip overhead.
    pub litho: usize,
    /// Measured PSHD computation time.
    #[serde(with = "duration_secs")]
    pub elapsed: Duration,
}

mod duration_secs {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_secs_f64(f64::deserialize(d)?))
    }
}

/// Runs a learning-based method on a benchmark.
///
/// # Panics
///
/// Panics when the framework rejects the configuration (the harness is
/// expected to pass consistent sizes).
pub fn run_active_method(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
) -> MethodResult {
    run_active_method_hooked(method, bench, config, seed, &mut NoCheckpoint)
}

/// [`run_active_method`] with durable-run support: the hook receives a
/// checkpoint at each iteration boundary and may supply one to resume from.
///
/// # Panics
///
/// Panics when the framework rejects the configuration or the checkpoint.
pub fn run_active_method_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    hook: &mut dyn CheckpointHook,
) -> MethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut bench.oracle(), hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("framework run succeeds");
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        elapsed: outcome.elapsed,
    }
}

/// Runs a learning-based method `repeats` times with consecutive seeds and
/// returns the mean accuracy / litho / time under the method's label —
/// CNN-style detectors are initialisation-sensitive, so the paper's tables
/// are read as averages.
///
/// # Panics
///
/// Panics when `repeats == 0` or the framework rejects the configuration.
pub fn run_active_method_avg(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    repeats: usize,
) -> MethodResult {
    assert!(repeats > 0, "repeats must be positive");
    let (mut acc, mut litho, mut secs) = (0.0f64, 0.0f64, 0.0f64);
    for repeat in 0..repeats {
        let r = run_active_method(method, bench, config, seed + repeat as u64);
        acc += r.accuracy;
        litho += r.litho as f64;
        secs += r.elapsed.as_secs_f64();
    }
    let n = repeats as f64;
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: acc / n,
        litho: (litho / n).round() as usize,
        elapsed: Duration::from_secs_f64(secs / n),
    }
}

/// One cell of the `faults` robustness sweep: a method run against a
/// seeded fault-injecting oracle behind the retry/quorum layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyMethodResult {
    /// Method label.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Injected transient-failure rate.
    pub transient: f64,
    /// Injected silent label-flip rate.
    pub flip: f64,
    /// Quorum votes per label (1 = no quorum).
    pub quorum: usize,
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Litho-clip overhead (Eq. 2, quorum re-simulations included).
    pub litho: usize,
    /// Billable re-simulations beyond the labelled sets.
    pub extra_simulations: usize,
    /// Oracle retries absorbed by the backoff policy.
    pub retries: usize,
    /// Queries abandoned after exhausting the retry budget.
    pub giveups: usize,
    /// Labels that never arrived (clips returned to the pool).
    pub label_failures: usize,
    /// Whether the run degraded (see `RunFaultStats::is_degraded`).
    pub degraded: bool,
}

/// Runs a learning-based method on a benchmark through a fault-injecting
/// oracle wrapped in retry/backoff (virtual clock — no wall-clock sleeps)
/// and, when `quorum > 1`, quorum re-labelling.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration.
pub fn run_active_method_faulty(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
) -> FaultyMethodResult {
    run_active_method_faulty_hooked(
        method,
        bench,
        config,
        seed,
        rates,
        quorum,
        &mut NoCheckpoint,
    )
}

/// [`run_active_method_faulty`] with durable-run support — the fault
/// schedule is a pure function of (seed, clip, attempt) and the fault/retry
/// meters ride along in the checkpoint, so a resumed faulty run reproduces
/// the uninterrupted one exactly.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration or the checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn run_active_method_faulty_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    hook: &mut dyn CheckpointHook,
) -> FaultyMethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    let flaky = FaultyOracle::new(bench.oracle(), rates, seed ^ 0xfa17_fa17);
    let mut oracle = RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new());
    if quorum > 1 {
        oracle = oracle.with_quorum(quorum);
    }
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut oracle, hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("degradation-aware framework run succeeds");
    FaultyMethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        transient: rates.transient,
        flip: rates.flip,
        quorum: quorum.max(1),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        extra_simulations: outcome.metrics.extra_simulations,
        retries: outcome.fault_stats.oracle_retries,
        giveups: outcome.fault_stats.oracle_giveups,
        label_failures: outcome.fault_stats.label_failures,
        degraded: outcome.degraded,
    }
}

/// Runs a pattern-matching method on a benchmark.
pub fn run_pattern_method(matcher: PatternMatcher, bench: &GeneratedBenchmark) -> MethodResult {
    // lithohd-lint: allow(determinism-clock) — method wall time is a reported measurement, not control flow
    let start = std::time::Instant::now();
    let outcome = matcher.run(bench);
    MethodResult {
        method: outcome.name,
        benchmark: bench.spec().name.clone(),
        accuracy: outcome.accuracy,
        litho: outcome.litho,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout::{BenchmarkSpec, Tech};

    fn bench() -> GeneratedBenchmark {
        let spec = BenchmarkSpec {
            name: "harness".to_owned(),
            tech: Tech::Euv7,
            hotspots: 15,
            non_hotspots: 135,
            dup_rate: 0.2,
            near_miss_rate: 0.3,
        };
        GeneratedBenchmark::generate(&spec, 4).unwrap()
    }

    #[test]
    fn all_active_methods_run() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;
        for method in [
            ActiveMethod::Ours,
            ActiveMethod::Ts,
            ActiveMethod::Qp,
            ActiveMethod::Random,
        ] {
            let result = run_active_method(method, &b, &config, 1);
            assert_eq!(result.method, method.label());
            assert!(result.accuracy > 0.0);
            assert!(result.litho > 0);
        }
    }

    #[test]
    fn faulty_method_runs_and_accounts() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;
        let rates = FaultRates {
            transient: 0.2,
            flip: 0.02,
            ..FaultRates::default()
        };
        let r = run_active_method_faulty(ActiveMethod::Ours, &b, &config, 1, rates, 3);
        assert!(r.litho > 0);
        assert_eq!(r.quorum, 3);
        assert!(r.retries > 0, "20% transient should force retries");
        assert!(r.extra_simulations > 0, "quorum votes should bill");
        // The same seed reproduces the same degraded run bit-for-bit.
        let again = run_active_method_faulty(ActiveMethod::Ours, &b, &config, 1, rates, 3);
        assert_eq!(r, again);
    }

    #[test]
    fn pattern_method_runs() {
        let b = bench();
        let result = run_pattern_method(PatternMatcher::exact(), &b);
        assert_eq!(result.method, "PM-exact");
        assert_eq!(result.accuracy, 1.0);
    }

    #[test]
    fn method_result_serializes() {
        let r = MethodResult {
            method: "Ours".to_owned(),
            benchmark: "B".to_owned(),
            accuracy: 0.5,
            litho: 10,
            elapsed: Duration::from_millis(1500),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: MethodResult = serde_json::from_str(&json).unwrap();
        assert!((back.elapsed.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
