use hotspot_active::{
    BatchSelector, CheckpointHook, EntropySelector, NoCheckpoint, RandomSelector, SamplingConfig,
    SamplingFramework, UncertaintySelector,
};
use hotspot_baselines::{PatternMatcher, QpSelector};
use hotspot_layout::GeneratedBenchmark;
use hotspot_litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
use hotspot_shard::{KillSpec, ShardConfig, ShardedOracle};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

use crate::cli::ExperimentArgs;

/// How a sharded run fans its labelling batches out — built from
/// `--workers` / `--kill-shard` / `--checkpoint-dir` by
/// [`ShardSpec::from_args`] and threaded into the `_sharded` runners. The
/// merged labels, Litho#, and canonical journal are byte-identical for
/// every worker count and for any chaos the recovery path absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Oracle worker threads per labelling batch.
    pub workers: usize,
    /// Optional chaos injection (applies to every run of the binary — each
    /// run builds a fresh sharded oracle, so the spec fires once per run).
    pub kill: Option<KillSpec>,
    /// Per-shard checkpoint-commit directory; lost workers are salvaged
    /// from it. `None` recovers by recomputation instead.
    pub dir: Option<PathBuf>,
}

impl ShardSpec {
    /// Builds the spec from `--workers` (returns `None` without it),
    /// `--kill-shard`, and — when `--checkpoint-dir` is given — a `shards/`
    /// commit subdirectory next to the run checkpoints.
    pub fn from_args(args: &ExperimentArgs) -> Option<Self> {
        Some(ShardSpec {
            workers: args.workers?,
            kill: args.kill_spec(),
            dir: args.checkpoint_dir.as_ref().map(|d| d.join("shards")),
        })
    }

    fn config(&self, seed: u64) -> ShardConfig {
        let mut config = ShardConfig::new(self.workers).with_stream_seed(seed ^ 0x5a4d_0001);
        if let Some(kill) = self.kill {
            config = config.with_kill(kill);
        }
        if let Some(dir) = &self.dir {
            config = config.with_dir(dir);
        }
        config
    }
}

/// The learning-based sampling methods of Table II (and Fig. 4 / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActiveMethod {
    /// The paper's entropy-based sampler.
    Ours,
    /// Calibrated uncertainty only ("TS").
    Ts,
    /// The QP batch selector of \[14\].
    Qp,
    /// Uniform random batches.
    Random,
}

impl ActiveMethod {
    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            ActiveMethod::Ours => "Ours",
            ActiveMethod::Ts => "TS",
            ActiveMethod::Qp => "QP",
            ActiveMethod::Random => "Random",
        }
    }

    /// Builds the corresponding batch selector.
    pub fn selector(self) -> Box<dyn BatchSelector> {
        match self {
            ActiveMethod::Ours => Box::new(EntropySelector::new()),
            ActiveMethod::Ts => Box::new(UncertaintySelector::new()),
            ActiveMethod::Qp => Box::new(QpSelector::new()),
            ActiveMethod::Random => Box::new(RandomSelector::new()),
        }
    }
}

/// One (method, benchmark) result cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method label.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Litho-clip overhead.
    pub litho: usize,
    /// Measured PSHD computation time.
    #[serde(with = "duration_secs")]
    pub elapsed: Duration,
    /// Oracle worker threads the labelling batches were sharded across
    /// (`--workers`); `None` is the single-threaded legacy path. Accuracy
    /// and Litho# are worker-count-invariant, so sharded rows exist purely
    /// to let `lithohd-report gate` track shard-scaling wall-clock.
    /// Baselines written before this field existed parse as `None`.
    pub workers: Option<usize>,
}

mod duration_secs {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_secs_f64(f64::deserialize(d)?))
    }
}

/// Runs a learning-based method on a benchmark.
///
/// # Panics
///
/// Panics when the framework rejects the configuration (the harness is
/// expected to pass consistent sizes).
pub fn run_active_method(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
) -> MethodResult {
    run_active_method_hooked(method, bench, config, seed, &mut NoCheckpoint)
}

/// [`run_active_method`] with durable-run support: the hook receives a
/// checkpoint at each iteration boundary and may supply one to resume from.
///
/// # Panics
///
/// Panics when the framework rejects the configuration or the checkpoint.
pub fn run_active_method_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    hook: &mut dyn CheckpointHook,
) -> MethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut bench.oracle(), hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("framework run succeeds");
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        elapsed: outcome.elapsed,
        workers: None,
    }
}

/// Runs a learning-based method `repeats` times with consecutive seeds and
/// returns the mean accuracy / litho / time under the method's label —
/// CNN-style detectors are initialisation-sensitive, so the paper's tables
/// are read as averages.
///
/// # Panics
///
/// Panics when `repeats == 0` or the framework rejects the configuration.
pub fn run_active_method_avg(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    repeats: usize,
) -> MethodResult {
    assert!(repeats > 0, "repeats must be positive");
    let (mut acc, mut litho, mut secs) = (0.0f64, 0.0f64, 0.0f64);
    for repeat in 0..repeats {
        let r = run_active_method(method, bench, config, seed + repeat as u64);
        acc += r.accuracy;
        litho += r.litho as f64;
        secs += r.elapsed.as_secs_f64();
    }
    let n = repeats as f64;
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: acc / n,
        litho: (litho / n).round() as usize,
        elapsed: Duration::from_secs_f64(secs / n),
        workers: None,
    }
}

/// [`run_active_method`] with the labelling batches sharded across
/// `spec.workers` oracle threads (see [`hotspot_shard::ShardedOracle`]).
///
/// # Panics
///
/// Panics when the framework rejects the configuration.
pub fn run_active_method_sharded(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    spec: &ShardSpec,
) -> MethodResult {
    run_active_method_sharded_hooked(method, bench, config, seed, spec, &mut NoCheckpoint)
}

/// [`run_active_method_sharded`] with durable-run support.
///
/// # Panics
///
/// Panics when the framework rejects the configuration or the checkpoint.
pub fn run_active_method_sharded_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    spec: &ShardSpec,
    hook: &mut dyn CheckpointHook,
) -> MethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    // The plain metered oracle carries no jitter stream: workers only need
    // fresh instances sharing the benchmark's ground truth.
    let mut oracle = ShardedOracle::new(
        bench.oracle(),
        move |_shard, _jitter_seed| bench.oracle(),
        spec.config(seed),
    );
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut oracle, hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("sharded framework run succeeds");
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        elapsed: outcome.elapsed,
        workers: Some(spec.workers),
    }
}

/// One cell of the `faults` robustness sweep: a method run against a
/// seeded fault-injecting oracle behind the retry/quorum layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyMethodResult {
    /// Method label.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Injected transient-failure rate.
    pub transient: f64,
    /// Injected silent label-flip rate.
    pub flip: f64,
    /// Quorum votes per label (1 = no quorum).
    pub quorum: usize,
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Litho-clip overhead (Eq. 2, quorum re-simulations included).
    pub litho: usize,
    /// Billable re-simulations beyond the labelled sets.
    pub extra_simulations: usize,
    /// Oracle retries absorbed by the backoff policy.
    pub retries: usize,
    /// Queries abandoned after exhausting the retry budget.
    pub giveups: usize,
    /// Labels that never arrived (clips returned to the pool).
    pub label_failures: usize,
    /// Whether the run degraded (see `RunFaultStats::is_degraded`).
    pub degraded: bool,
}

/// Runs a learning-based method on a benchmark through a fault-injecting
/// oracle wrapped in retry/backoff (virtual clock — no wall-clock sleeps)
/// and, when `quorum > 1`, quorum re-labelling.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration.
pub fn run_active_method_faulty(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
) -> FaultyMethodResult {
    run_active_method_faulty_hooked(
        method,
        bench,
        config,
        seed,
        rates,
        quorum,
        &mut NoCheckpoint,
    )
}

/// [`run_active_method_faulty`] with durable-run support — the fault
/// schedule is a pure function of (seed, clip, attempt) and the fault/retry
/// meters ride along in the checkpoint, so a resumed faulty run reproduces
/// the uninterrupted one exactly.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration or the checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn run_active_method_faulty_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    hook: &mut dyn CheckpointHook,
) -> FaultyMethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    let flaky = FaultyOracle::new(bench.oracle(), rates, seed ^ 0xfa17_fa17);
    let mut oracle = RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new());
    if quorum > 1 {
        oracle = oracle.with_quorum(quorum);
    }
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut oracle, hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("degradation-aware framework run succeeds");
    FaultyMethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        transient: rates.transient,
        flip: rates.flip,
        quorum: quorum.max(1),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        extra_simulations: outcome.metrics.extra_simulations,
        retries: outcome.fault_stats.oracle_retries,
        giveups: outcome.fault_stats.oracle_giveups,
        label_failures: outcome.fault_stats.label_failures,
        degraded: outcome.degraded,
    }
}

/// [`run_active_method_avg`] with sharded labelling: each repeat fans its
/// batches across `spec.workers` oracle threads.
///
/// # Panics
///
/// Panics when `repeats == 0` or the framework rejects the configuration.
pub fn run_active_method_avg_sharded(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    repeats: usize,
    spec: &ShardSpec,
) -> MethodResult {
    assert!(repeats > 0, "repeats must be positive");
    let (mut acc, mut litho, mut secs) = (0.0f64, 0.0f64, 0.0f64);
    for repeat in 0..repeats {
        let r = run_active_method_sharded(method, bench, config, seed + repeat as u64, spec);
        acc += r.accuracy;
        litho += r.litho as f64;
        secs += r.elapsed.as_secs_f64();
    }
    let n = repeats as f64;
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: acc / n,
        litho: (litho / n).round() as usize,
        elapsed: Duration::from_secs_f64(secs / n),
        workers: Some(spec.workers),
    }
}

/// [`run_active_method_faulty`] with the labelling batches sharded across
/// `spec.workers` oracle threads. Each worker rebuilds the whole
/// retry/quorum/fault stack over a fresh metered oracle and restores it
/// from the master's snapshot; per-worker retry-jitter seeds come from the
/// coordinator's split ChaCha streams and shape backoff sleeps only, so the
/// merged run equals the single-threaded one label for label and bill for
/// bill.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration.
pub fn run_active_method_faulty_sharded(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    spec: &ShardSpec,
) -> FaultyMethodResult {
    run_active_method_faulty_sharded_hooked(
        method,
        bench,
        config,
        seed,
        rates,
        quorum,
        spec,
        &mut NoCheckpoint,
    )
}

/// [`run_active_method_faulty_sharded`] with durable-run support.
///
/// # Panics
///
/// Panics when the rates are invalid or the framework rejects the
/// configuration or the checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn run_active_method_faulty_sharded_hooked(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    spec: &ShardSpec,
    hook: &mut dyn CheckpointHook,
) -> FaultyMethodResult {
    let framework = SamplingFramework::new(config.clone());
    let mut selector = method.selector();
    let stack = move |jitter_seed: u64| {
        let flaky = FaultyOracle::new(bench.oracle(), rates, seed ^ 0xfa17_fa17);
        let policy = RetryPolicy {
            seed: jitter_seed,
            ..RetryPolicy::default()
        };
        let mut oracle = RetryOracle::with_clock(flaky, policy, VirtualClock::new());
        if quorum > 1 {
            oracle = oracle.with_quorum(quorum);
        }
        oracle
    };
    let master = stack(RetryPolicy::default().seed);
    let mut oracle = ShardedOracle::new(
        master,
        move |_shard, jitter_seed| stack(jitter_seed),
        spec.config(seed),
    );
    let outcome = framework
        .run_with_oracle_checkpointed(bench, selector.as_mut(), seed, &mut oracle, hook)
        // lithohd-lint: allow(panic-safety) — documented: the harness passes validated configurations
        .expect("sharded degradation-aware framework run succeeds");
    FaultyMethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        transient: rates.transient,
        flip: rates.flip,
        quorum: quorum.max(1),
        accuracy: outcome.metrics.accuracy,
        litho: outcome.metrics.litho,
        extra_simulations: outcome.metrics.extra_simulations,
        retries: outcome.fault_stats.oracle_retries,
        giveups: outcome.fault_stats.oracle_giveups,
        label_failures: outcome.fault_stats.label_failures,
        degraded: outcome.degraded,
    }
}

/// Runs a pattern-matching method on a benchmark.
pub fn run_pattern_method(matcher: PatternMatcher, bench: &GeneratedBenchmark) -> MethodResult {
    // lithohd-lint: allow(determinism-clock) — method wall time is a reported measurement, not control flow
    let start = std::time::Instant::now();
    let outcome = matcher.run(bench);
    MethodResult {
        method: outcome.name,
        benchmark: bench.spec().name.clone(),
        accuracy: outcome.accuracy,
        litho: outcome.litho,
        elapsed: start.elapsed(),
        workers: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout::{BenchmarkSpec, Tech};

    fn bench() -> GeneratedBenchmark {
        let spec = BenchmarkSpec {
            name: "harness".to_owned(),
            tech: Tech::Euv7,
            hotspots: 15,
            non_hotspots: 135,
            dup_rate: 0.2,
            near_miss_rate: 0.3,
        };
        GeneratedBenchmark::generate(&spec, 4).unwrap()
    }

    #[test]
    fn all_active_methods_run() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;
        for method in [
            ActiveMethod::Ours,
            ActiveMethod::Ts,
            ActiveMethod::Qp,
            ActiveMethod::Random,
        ] {
            let result = run_active_method(method, &b, &config, 1);
            assert_eq!(result.method, method.label());
            assert!(result.accuracy > 0.0);
            assert!(result.litho > 0);
        }
    }

    #[test]
    fn faulty_method_runs_and_accounts() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;
        let rates = FaultRates {
            transient: 0.2,
            flip: 0.02,
            ..FaultRates::default()
        };
        let r = run_active_method_faulty(ActiveMethod::Ours, &b, &config, 1, rates, 3);
        assert!(r.litho > 0);
        assert_eq!(r.quorum, 3);
        assert!(r.retries > 0, "20% transient should force retries");
        assert!(r.extra_simulations > 0, "quorum votes should bill");
        // The same seed reproduces the same degraded run bit-for-bit.
        let again = run_active_method_faulty(ActiveMethod::Ours, &b, &config, 1, rates, 3);
        assert_eq!(r, again);
    }

    #[test]
    fn sharded_runs_match_sequential_outcomes() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;

        let sequential = run_active_method(ActiveMethod::Ours, &b, &config, 1);
        for workers in [1, 3] {
            let spec = ShardSpec {
                workers,
                kill: None,
                dir: None,
            };
            let sharded = run_active_method_sharded(ActiveMethod::Ours, &b, &config, 1, &spec);
            assert_eq!(sequential.accuracy, sharded.accuracy, "N={workers}");
            assert_eq!(sequential.litho, sharded.litho, "N={workers}");
        }

        let rates = FaultRates {
            transient: 0.2,
            flip: 0.02,
            ..FaultRates::default()
        };
        let sequential = run_active_method_faulty(ActiveMethod::Ours, &b, &config, 1, rates, 3);
        let spec = ShardSpec {
            workers: 3,
            kill: None,
            dir: None,
        };
        let sharded =
            run_active_method_faulty_sharded(ActiveMethod::Ours, &b, &config, 1, rates, 3, &spec);
        assert_eq!(sequential, sharded, "faulty stack must merge identically");
    }

    #[test]
    fn killed_worker_run_matches_the_undisturbed_one() {
        let b = bench();
        let mut config = SamplingConfig::for_benchmark(b.len());
        config.iterations = 2;
        config.initial_epochs = 20;
        config.update_epochs = 5;
        let rates = FaultRates {
            transient: 0.2,
            ..FaultRates::default()
        };
        let calm = ShardSpec {
            workers: 3,
            kill: None,
            dir: None,
        };
        let chaos = ShardSpec {
            workers: 3,
            kill: Some(KillSpec {
                shard: 1,
                batch: 2,
                mode: hotspot_shard::FailureMode::Panic,
            }),
            dir: None,
        };
        let undisturbed =
            run_active_method_faulty_sharded(ActiveMethod::Ours, &b, &config, 1, rates, 1, &calm);
        let murdered =
            run_active_method_faulty_sharded(ActiveMethod::Ours, &b, &config, 1, rates, 1, &chaos);
        assert_eq!(undisturbed, murdered, "recovery must not change anything");
    }

    #[test]
    fn pattern_method_runs() {
        let b = bench();
        let result = run_pattern_method(PatternMatcher::exact(), &b);
        assert_eq!(result.method, "PM-exact");
        assert_eq!(result.accuracy, 1.0);
    }

    #[test]
    fn method_result_serializes() {
        let r = MethodResult {
            method: "Ours".to_owned(),
            benchmark: "B".to_owned(),
            accuracy: 0.5,
            litho: 10,
            elapsed: Duration::from_millis(1500),
            workers: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: MethodResult = serde_json::from_str(&json).unwrap();
        assert!((back.elapsed.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(back.workers, None);
    }

    #[test]
    fn baselines_without_a_workers_field_parse_as_unsharded() {
        // BENCH_pshd.json files written before the shard-scaling rows
        // existed must keep loading; the absent field reads as `None`.
        let legacy = r#"{"method":"Ours","benchmark":"B","accuracy":0.9,"litho":12,"elapsed":2.5}"#;
        let row: MethodResult = serde_json::from_str(legacy).unwrap();
        assert_eq!(row.workers, None);

        let tagged = r#"{"method":"Ours","benchmark":"B","accuracy":0.9,"litho":12,"elapsed":2.5,"workers":4}"#;
        let row: MethodResult = serde_json::from_str(tagged).unwrap();
        assert_eq!(row.workers, Some(4));
    }
}
