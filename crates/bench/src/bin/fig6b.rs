//! Fig. 6(b) — end-to-end runtime comparison among solutions.
//!
//! The overall runtime is modelled as 10 s per litho-clip plus the measured
//! PSHD computation time (Section IV-C of the paper). PM-exact pays for the
//! most simulations and dominates the chart; the active-learning methods
//! cluster far lower, with Ours cheapest.

use hotspot_active::SamplingConfig;
use hotspot_baselines::PatternMatcher;
use hotspot_bench::{
    evaluated_specs, run_active_method, run_pattern_method, runtime_seconds, try_generate,
    write_json, ActiveMethod, ExperimentArgs,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct RuntimeResult {
    method: String,
    litho: usize,
    pshd_seconds: f64,
    total_seconds: f64,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let specs = evaluated_specs(args.scale);

    // Aggregate litho and compute time over all four benchmarks per method.
    let mut totals: Vec<(String, usize, f64)> = vec![
        ("PM-exact".to_owned(), 0, 0.0),
        ("TS".to_owned(), 0, 0.0),
        ("QP".to_owned(), 0, 0.0),
        ("Ours".to_owned(), 0, 0.0),
    ];
    for spec in &specs {
        let bench = try_generate(spec, args.seed).expect("benchmark generation succeeds");
        let config = SamplingConfig::for_benchmark(bench.len());
        let cells = [
            run_pattern_method(PatternMatcher::exact(), &bench),
            run_active_method(ActiveMethod::Ts, &bench, &config, args.seed),
            run_active_method(ActiveMethod::Qp, &bench, &config, args.seed),
            run_active_method(ActiveMethod::Ours, &bench, &config, args.seed),
        ];
        for (total, cell) in totals.iter_mut().zip(&cells) {
            total.1 += cell.litho;
            total.2 += cell.elapsed.as_secs_f64();
        }
    }

    println!(
        "Fig. 6(b): overall runtime (10 s per litho-clip + PSHD overhead, scale {})",
        args.scale
    );
    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "method", "Litho#", "PSHD (s)", "Total (s)"
    );
    let mut results = Vec::new();
    for (method, litho, pshd) in totals {
        let total = runtime_seconds(litho, std::time::Duration::from_secs_f64(pshd));
        println!(
            "{:<10} {:>10} {:>12.1} {:>14.1}",
            method, litho, pshd, total
        );
        results.push(RuntimeResult {
            method,
            litho,
            pshd_seconds: pshd,
            total_seconds: total,
        });
    }

    // The paper's shape: PM-exact is by far the most expensive, QP pays more
    // than Ours (more compute and at least as much litho), and Ours sits at
    // the cheap end of the learning methods (TS may tie within noise — its
    // budget is identical and only false alarms differ).
    let total_of = |name: &str| {
        results
            .iter()
            .find(|r| r.method == name)
            .expect("method ran")
            .total_seconds
    };
    assert!(
        total_of("PM-exact") > 1.5 * total_of("Ours"),
        "PM-exact must dominate"
    );
    assert!(total_of("QP") >= total_of("Ours"), "QP must not beat Ours");
    assert!(
        total_of("TS") >= total_of("Ours") * 0.99,
        "TS may only undercut Ours within noise"
    );
    write_json(&args.out, "fig6b", &results);
    args.finish_telemetry();
}
