//! Fig. 3(a) — visualisation of the layout-pattern diversity metric.
//!
//! Takes a query set of clips, embeds them with a trained classifier,
//! computes the paper's min-distance diversity scores, projects the
//! embeddings to 2-D by PCA, and prints the scatter with the
//! highest-diversity points flagged (the paper colours them orange —
//! points away from clusters or on group boundaries are preferred).

use hotspot_active::{diversity_scores, HotspotModel};
use hotspot_bench::{project_2d, try_generate, write_json, ExperimentArgs};
use hotspot_layout::BenchmarkSpec;
use hotspot_nn::Matrix;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ScatterPoint {
    x: f32,
    y: f32,
    diversity: f32,
    highlighted: bool,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_2().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");

    let dct = bench.dct_features();
    let (mean, std) = dct.column_stats();
    let standardized = dct.standardized(&mean, &std);
    let x = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());
    let y: Vec<usize> = bench.labels().iter().map(|l| l.class_index()).collect();

    // A lightly trained model provides the embedding space.
    let train: Vec<usize> = (0..bench.len()).step_by(3).collect();
    let labels: Vec<usize> = train.iter().map(|&i| y[i]).collect();
    let mut model = HotspotModel::new(x.cols(), args.seed, 1.0, 1e-3, 32);
    model
        .train(&x.gather_rows(&train), &labels, 40, args.seed)
        .expect("training succeeds");

    // Query set: a slice of the pool.
    let query: Vec<usize> = (0..bench.len()).filter(|i| i % 3 != 0).take(200).collect();
    let (_, embeddings) = model.predict(&x.gather_rows(&query));
    let scores = diversity_scores(&embeddings);
    let planar = project_2d(embeddings.as_slice(), embeddings.cols());

    // Flag the top 15% most diverse points.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let cutoff = order.len().div_ceil(7);
    let mut highlighted = vec![false; scores.len()];
    for &i in &order[..cutoff] {
        highlighted[i] = true;
    }

    println!(
        "Fig. 3(a): layout pattern diversity ({} query clips)",
        query.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>6}",
        "pc1", "pc2", "diversity", "flag"
    );
    let mut points = Vec::new();
    for (i, &(px, py)) in planar.iter().enumerate() {
        let flag = if highlighted[i] { "HIGH" } else { "" };
        println!("{:>10.4} {:>10.4} {:>10.4} {:>6}", px, py, scores[i], flag);
        points.push(ScatterPoint {
            x: px,
            y: py,
            diversity: scores[i],
            highlighted: highlighted[i],
        });
    }

    // Sanity property of the figure: the flagged points are more isolated on
    // average than the rest.
    let mean_of = |want: bool| -> f64 {
        let (mut sum, mut count) = (0.0f64, 0usize);
        for (i, &h) in highlighted.iter().enumerate() {
            if h == want {
                sum += scores[i] as f64;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    println!();
    println!(
        "mean diversity: highlighted {:.4} vs others {:.4}",
        mean_of(true),
        mean_of(false)
    );
    write_json(&args.out, "fig3a", &points);
    args.finish_telemetry();
}
