//! Stability analysis (supporting the Fig. 4 discussion): the paper notes
//! that CNN-based flows carry "uncertain behavior … introduced by weights
//! initialization and batch sampling", and argues its method is the most
//! stable. This binary quantifies that: each method runs over `--repeats`
//! seeds on one benchmark and reports mean ± standard deviation of both
//! accuracy and litho overhead.

use hotspot_active::SamplingConfig;
use hotspot_bench::{run_active_method, try_generate, write_json, ActiveMethod, ExperimentArgs};
use hotspot_layout::BenchmarkSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct StabilityRow {
    method: String,
    accuracy_mean: f64,
    accuracy_std: f64,
    litho_mean: f64,
    litho_std: f64,
    runs: usize,
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let args = ExperimentArgs::from_env();
    let repeats = args.repeats.max(3);
    let spec = BenchmarkSpec::iccad16_3().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let config = SamplingConfig::for_benchmark(bench.len());

    println!(
        "Stability of batch-selection strategies on {} ({} seeds)",
        spec.name, repeats
    );
    println!(
        "{:<8} {:>10} {:>8} {:>12} {:>10}",
        "method", "Acc(%)", "±std", "Litho#", "±std"
    );
    let mut rows = Vec::new();
    for method in [
        ActiveMethod::Ours,
        ActiveMethod::Qp,
        ActiveMethod::Ts,
        ActiveMethod::Random,
    ] {
        let mut accuracies = Vec::with_capacity(repeats);
        let mut lithos = Vec::with_capacity(repeats);
        for repeat in 0..repeats {
            let result = run_active_method(method, &bench, &config, args.seed + repeat as u64);
            accuracies.push(result.accuracy);
            lithos.push(result.litho as f64);
        }
        let (acc_mean, acc_std) = mean_std(&accuracies);
        let (litho_mean, litho_std) = mean_std(&lithos);
        println!(
            "{:<8} {:>10.2} {:>8.2} {:>12.1} {:>10.1}",
            method.label(),
            acc_mean * 100.0,
            acc_std * 100.0,
            litho_mean,
            litho_std
        );
        rows.push(StabilityRow {
            method: method.label().to_owned(),
            accuracy_mean: acc_mean,
            accuracy_std: acc_std,
            litho_mean,
            litho_std,
            runs: repeats,
        });
    }

    // The paper's stability claim: Ours varies no more than the baselines.
    let std_of = |name: &str| {
        rows.iter()
            .find(|r| r.method == name)
            .expect("method ran")
            .accuracy_std
    };
    assert!(
        std_of("Ours") <= std_of("Random") + 0.02,
        "Ours should not be less stable than random sampling"
    );
    write_json(&args.out, "stability", &rows);
    args.finish_telemetry();
}
