//! Fig. 2 — reliability diagrams before and after model calibration.
//!
//! Trains the hotspot classifier on a labelled subset of an ICCAD16-3-like
//! benchmark, then bins held-out prediction confidences against empirical
//! accuracy in 10 equal-width bins: once with the raw softmax (`T = 1`,
//! Fig. 2a) and once after temperature scaling on a validation split
//! (Fig. 2b). The calibrated ECE should drop substantially.

use hotspot_active::HotspotModel;
use hotspot_bench::{try_generate, write_json, ExperimentArgs};
use hotspot_calibration::{ReliabilityDiagram, Temperature};
use hotspot_layout::BenchmarkSpec;
use hotspot_nn::Matrix;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig2Result {
    temperature: f64,
    ece_before: f64,
    ece_after: f64,
    bins_before: Vec<(f64, f64, usize)>,
    bins_after: Vec<(f64, f64, usize)>,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_3().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");

    // Standardised features and a train / validation / test split.
    let dct = bench.dct_features();
    let (mean, std) = dct.column_stats();
    let standardized = dct.standardized(&mean, &std);
    let x = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());
    let y: Vec<usize> = bench.labels().iter().map(|l| l.class_index()).collect();

    let n = bench.len();
    let train: Vec<usize> = (0..n).filter(|i| i % 4 == 0).collect();
    let validation: Vec<usize> = (0..n).filter(|i| i % 4 == 1).collect();
    let test: Vec<usize> = (0..n).filter(|i| i % 4 > 1).collect();

    let mut model = HotspotModel::new(x.cols(), args.seed, 1.0, 1e-3, 32);
    let labels: Vec<usize> = train.iter().map(|&i| y[i]).collect();
    model
        .train(&x.gather_rows(&train), &labels, 60, args.seed)
        .expect("training succeeds");

    // Fit the temperature on validation logits.
    let (val_logits, _) = model.predict(&x.gather_rows(&validation));
    let val_labels: Vec<usize> = validation.iter().map(|&i| y[i]).collect();
    let temperature =
        Temperature::fit(val_logits.as_slice(), 2, &val_labels).expect("temperature fit succeeds");

    // Held-out confidences, raw and calibrated.
    let (test_logits, _) = model.predict(&x.gather_rows(&test));
    let diagram = |t: Temperature| -> ReliabilityDiagram {
        let probabilities = t.probabilities_batch(test_logits.as_slice(), 2);
        let mut confidences = Vec::with_capacity(test.len());
        let mut correct = Vec::with_capacity(test.len());
        for (row, &clip) in test.iter().enumerate() {
            let p = &probabilities[row * 2..row * 2 + 2];
            let pred = (p[1] > p[0]) as usize;
            confidences.push(p[pred] as f64);
            correct.push(pred == y[clip]);
        }
        ReliabilityDiagram::from_predictions(&confidences, &correct, 10)
    };
    let before = diagram(Temperature::identity());
    let after = diagram(temperature);

    println!(
        "Fig. 2: reliability diagrams (confidence vs accuracy), {}",
        spec.name
    );
    println!();
    println!("(a) Original (T = 1)");
    println!("{before}");
    println!();
    println!("(b) Calibrated ({temperature})");
    println!("{after}");
    println!();
    println!(
        "ECE {:.4} -> {:.4} ({} held-out clips)",
        before.ece(),
        after.ece(),
        test.len()
    );

    let to_triples = |d: &ReliabilityDiagram| {
        d.bins()
            .iter()
            .map(|b| (b.mean_confidence, b.accuracy, b.count))
            .collect::<Vec<_>>()
    };
    write_json(
        &args.out,
        "fig2",
        &Fig2Result {
            temperature: temperature.value(),
            ece_before: before.ece(),
            ece_after: after.ece(),
            bins_before: to_triples(&before),
            bins_after: to_triples(&after),
        },
    );
    args.finish_telemetry();
}
