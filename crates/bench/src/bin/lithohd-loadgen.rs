//! `lithohd-loadgen` — deterministic load generator for `lithohd-serve`.
//!
//! Drives `POST /score` on a running server with seeded, reproducible
//! request payloads and reports latency quantiles and throughput:
//!
//! * **closed loop** (default): each client holds one keep-alive
//!   connection and fires its next request as soon as the previous one
//!   answers — measures the server's saturated service rate.
//! * **open loop** (`--rps <n>`): clients pace submissions to a fixed
//!   aggregate arrival rate regardless of completions — measures latency
//!   under a target offered load, the way real traffic arrives.
//!
//! Outputs a `BENCH_serve.json`-shaped kernel-sample array (gateable with
//! `lithohd-report gate <fresh> <baseline> --tolerance-time <f>`) and,
//! with `--svg <dir>`, the latency quantile/timeline panels.
//!
//! Exit codes: `0` success, `1` any request failed, `2` usage error.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use hotspot_serve::HttpClient;
use hotspot_telemetry::{self as telemetry, names};
use hotspot_viz::{latency_report_panel, latency_timeline_panel, LatencySummary};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "usage: lithohd-loadgen --addr <host:port> [options]\n\
  --addr <host:port>      server to drive (required)\n\
  --requests <n>          measured requests total (default 200)\n\
  --warmup <n>            unmeasured warmup requests total (default 16)\n\
  --clients <n>           concurrent connections (default 8)\n\
  --rows <n>              feature rows per request (default 4)\n\
  --dim <n>               feature row width (default 148)\n\
  --rps <n>               open-loop aggregate arrival rate (default: closed loop)\n\
  --seed <n>              payload seed (default 7)\n\
  --out <file.json>       write kernel-sample JSON (BENCH_serve.json shape)\n\
  --svg <dir>             write latency SVG panels";

struct Options {
    addr: String,
    requests: usize,
    warmup: usize,
    clients: usize,
    rows: usize,
    dim: usize,
    rps: Option<f64>,
    seed: u64,
    out: Option<String>,
    svg: Option<String>,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("lithohd-loadgen: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        requests: 200,
        warmup: 16,
        clients: 8,
        rows: 4,
        dim: 148,
        rps: None,
        seed: 7,
        out: None,
        svg: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => options.addr = value()?,
            "--requests" => options.requests = parse(&flag, &value()?)?,
            "--warmup" => options.warmup = parse(&flag, &value()?)?,
            "--clients" => options.clients = parse::<usize>(&flag, &value()?)?.max(1),
            "--rows" => options.rows = parse::<usize>(&flag, &value()?)?.max(1),
            "--dim" => options.dim = parse::<usize>(&flag, &value()?)?.max(1),
            "--rps" => options.rps = Some(parse(&flag, &value()?)?),
            "--seed" => options.seed = parse(&flag, &value()?)?,
            "--out" => options.out = Some(value()?),
            "--svg" => options.svg = Some(value()?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(options)
}

/// Seeded payload for one (client, request) pair; byte-identical across
/// runs, so two loadgen invocations offer the server the same work.
fn payload(seed: u64, client: usize, request: usize, rows: usize, dim: usize) -> String {
    let stream = seed ^ ((client as u64) << 32) ^ request as u64;
    let mut rng = ChaCha8Rng::seed_from_u64(stream);
    let mut body = format!(r#"{{"request_id":"c{client}-r{request}","features":["#);
    for row in 0..rows {
        if row > 0 {
            body.push(',');
        }
        body.push('[');
        for cell in 0..dim {
            if cell > 0 {
                body.push(',');
            }
            let v: f32 = rng.gen_range(-1.0..1.0);
            let _ = write!(body, "{}", v as f64);
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    errors: usize,
}

fn drive_client(
    options: &Options,
    client: usize,
    measured: usize,
    warmup: usize,
) -> Result<ClientOutcome, String> {
    let mut http = HttpClient::connect(&options.addr, Duration::from_secs(60))
        .map_err(|e| format!("client {client} cannot connect to {}: {e}", options.addr))?;
    // Open loop: pace this client at its share of the aggregate rate.
    let interval = options
        .rps
        .filter(|rps| *rps > 0.0)
        .map(|rps| Duration::from_secs_f64(options.clients as f64 / rps));
    let start = Instant::now();
    let mut latencies_ns = Vec::with_capacity(measured);
    let mut errors = 0usize;
    for request in 0..warmup + measured {
        if let Some(interval) = interval {
            let scheduled = interval * request as u32;
            let elapsed = start.elapsed();
            if scheduled > elapsed {
                std::thread::sleep(scheduled - elapsed);
            }
        }
        let body = payload(options.seed, client, request, options.rows, options.dim);
        let sent = Instant::now();
        let response = http
            .post_json("/score", &body)
            .map_err(|e| format!("client {client} request {request} failed: {e}"))?;
        let elapsed = sent.elapsed();
        telemetry::counter(names::LOADGEN_REQUESTS).incr();
        telemetry::histogram(names::LOADGEN_LATENCY_SECONDS).record(elapsed.as_secs_f64());
        if response.status != 200 {
            telemetry::counter(names::LOADGEN_ERRORS).incr();
            errors += 1;
        }
        if request >= warmup {
            latencies_ns.push(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
    Ok(ClientOutcome {
        latencies_ns,
        errors,
    })
}

fn run() -> Result<ExitCode, String> {
    let options = parse_options()?;
    let per_client = options.requests.div_ceil(options.clients);
    let warmup_per_client = options.warmup.div_ceil(options.clients);

    let wall_start = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(options.clients);
        for client in 0..options.clients {
            let options = &options;
            handles.push(
                scope.spawn(move || drive_client(options, client, per_client, warmup_per_client)),
            );
        }
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_string()))
            })
            .collect()
    });
    let wall = wall_start.elapsed();

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    for outcome in outcomes {
        let outcome = outcome?;
        latencies_ns.extend(outcome.latencies_ns);
        errors += outcome.errors;
    }
    if latencies_ns.is_empty() {
        return Err("no measured requests — raise --requests".to_string());
    }

    let as_ms: Vec<f64> = latencies_ns.iter().map(|&ns| ns as f64 / 1e6).collect();
    let quantile = |q: f64| -> f64 { hotspot_bench::journal::percentile(&as_ms, q).unwrap_or(0.0) };
    let mean_ms = as_ms.iter().sum::<f64>() / as_ms.len() as f64;
    let throughput = latencies_ns.len() as f64 / wall.as_secs_f64().max(1e-9);
    let summary = LatencySummary {
        p50_ms: quantile(0.50),
        p95_ms: quantile(0.95),
        p99_ms: quantile(0.99),
        mean_ms,
        throughput_rps: throughput,
    };
    let mode = match options.rps {
        Some(rps) => format!("open loop @ {rps} req/s offered"),
        None => "closed loop".to_string(),
    };
    println!(
        "{} requests ({mode}, {} clients, {} rows/req): p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms mean {:.2}ms — {:.0} req/s, {errors} errors",
        latencies_ns.len(),
        options.clients,
        options.rows,
        summary.p50_ms,
        summary.p95_ms,
        summary.p99_ms,
        summary.mean_ms,
        throughput
    );

    if let Some(out) = &options.out {
        let samples = [
            ("serve.score.p50_ns", summary.p50_ms),
            ("serve.score.p95_ns", summary.p95_ms),
            ("serve.score.p99_ns", summary.p99_ms),
            ("serve.score.mean_ns", summary.mean_ms),
        ];
        let rows: Vec<String> = samples
            .iter()
            .map(|(kernel, ms)| {
                format!(
                    r#"  {{"kernel": "{kernel}", "median_ns": {}, "samples": {}, "batch": {}}}"#,
                    (ms * 1e6).round() as u64,
                    latencies_ns.len(),
                    options.rows
                )
            })
            .collect();
        let text = format!("[\n{}\n]\n", rows.join(",\n"));
        std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }

    if let Some(dir) = &options.svg {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        let report = latency_report_panel("POST /score", &summary, &as_ms);
        let timeline = latency_timeline_panel("POST /score — per-request", &as_ms);
        for (name, svg) in [("latency.svg", report), ("latency-timeline.svg", timeline)] {
            let path = std::path::Path::new(dir).join(name);
            std::fs::write(&path, svg)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
    }

    Ok(if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}
