//! Fig. 6(a) — fixed vs dynamic score weights on ICCAD16-3.
//!
//! Compares the entropy-weighting method against fixed diversity weights
//! ω₂ ∈ {0.2, 0.4, 0.6} on an ICCAD16-3-like benchmark, reporting accuracy
//! and litho overhead averaged over seeds. Dynamic weights should match or
//! beat every fixed setting on both criteria.

use hotspot_active::{SamplingConfig, WeightMode};
use hotspot_bench::{run_active_method, try_generate, write_json, ActiveMethod, ExperimentArgs};
use hotspot_layout::BenchmarkSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct WeightResult {
    setting: String,
    accuracy: f64,
    litho: f64,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_3().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    // A deliberately tight sampling budget: with the default (paper-profile)
    // budget every weighting reaches the accuracy ceiling and the comparison
    // degenerates; the weight choice only matters when batches are scarce.
    let mut base = SamplingConfig::for_benchmark(bench.len());
    base.batch = (base.batch / 3).max(5);
    base.query_pool = base.batch * 8;
    base.iterations = 6;

    let settings: Vec<(String, WeightMode)> = vec![
        ("0.2".to_owned(), WeightMode::Fixed { omega2: 0.2 }),
        ("0.4".to_owned(), WeightMode::Fixed { omega2: 0.4 }),
        ("0.6".to_owned(), WeightMode::Fixed { omega2: 0.6 }),
        ("Ours".to_owned(), WeightMode::Entropy),
    ];

    println!(
        "Fig. 6(a): fixed vs dynamic weights on {} ({} repeats)",
        spec.name, args.repeats
    );
    println!("{:>6} {:>10} {:>12}", "w2", "Acc(%)", "Litho#");
    let mut results = Vec::new();
    for (name, mode) in settings {
        let mut config = base.clone();
        config.weight_mode = mode;
        let (mut acc, mut litho) = (0.0f64, 0.0f64);
        for repeat in 0..args.repeats {
            let r = run_active_method(
                ActiveMethod::Ours,
                &bench,
                &config,
                args.seed + repeat as u64,
            );
            acc += r.accuracy;
            litho += r.litho as f64;
        }
        acc /= args.repeats as f64;
        litho /= args.repeats as f64;
        println!("{:>6} {:>10.2} {:>12.1}", name, acc * 100.0, litho);
        results.push(WeightResult {
            setting: name,
            accuracy: acc,
            litho,
        });
    }
    write_json(&args.out, "fig6a", &results);
    args.finish_telemetry();
}
