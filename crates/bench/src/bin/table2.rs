//! Table II — full-chip pattern sampling and hotspot detection.
//!
//! Runs all seven methods of the paper's main comparison — PM-exact, PM-a95,
//! PM-a90, PM-e2, TS, QP \[14\], and Ours — over the four evaluated
//! benchmarks, printing Acc(%) / Litho# per cell plus the Average and Ratio
//! summary rows (ratios normalised by "Ours", as in the paper).

use hotspot_active::SamplingConfig;
use hotspot_baselines::PatternMatcher;
use hotspot_bench::{
    evaluated_specs, ratio_row, render_table, run_active_method_avg, run_pattern_method,
    try_generate, write_json, ActiveMethod, ExperimentArgs, MethodResult, TableRow,
};

const METHODS: [&str; 7] = ["PM-exact", "PM-a95", "PM-a90", "PM-e2", "TS", "QP", "Ours"];

fn main() {
    let args = ExperimentArgs::from_env();
    let specs = evaluated_specs(args.scale);

    let mut rows = Vec::new();
    let mut results: Vec<MethodResult> = Vec::new();
    for spec in &specs {
        let bench = try_generate(spec, args.seed).expect("benchmark generation succeeds");
        let config = SamplingConfig::for_benchmark(bench.len());
        let cells: Vec<MethodResult> = vec![
            run_pattern_method(PatternMatcher::exact(), &bench),
            run_pattern_method(PatternMatcher::fuzzy_95(), &bench),
            run_pattern_method(PatternMatcher::fuzzy_90(), &bench),
            run_pattern_method(PatternMatcher::edge_tolerant(), &bench),
            run_active_method_avg(ActiveMethod::Ts, &bench, &config, args.seed, args.repeats),
            run_active_method_avg(ActiveMethod::Qp, &bench, &config, args.seed, args.repeats),
            run_active_method_avg(ActiveMethod::Ours, &bench, &config, args.seed, args.repeats),
        ];
        for cell in &cells {
            hotspot_telemetry::info(
                "bench.table2",
                "method finished",
                &[
                    ("benchmark", spec.name.as_str().into()),
                    ("method", cell.method.as_str().into()),
                    ("accuracy", cell.accuracy.into()),
                    ("litho", (cell.litho as u64).into()),
                ],
            );
        }
        rows.push(TableRow {
            label: spec.name.clone(),
            cells: cells.iter().map(|c| (c.accuracy, c.litho as f64)).collect(),
            percent: true,
        });
        results.extend(cells);
    }

    let (avg, ratio) = ratio_row(&rows);
    rows.push(avg);
    rows.push(ratio);

    println!(
        "Table II: full chip pattern sampling and hotspot detection (scale {}, seed {}, {} repeats)",
        args.scale, args.seed, args.repeats
    );
    println!("{}", render_table(&METHODS, &rows));
    write_json(&args.out, "table2", &results);
    args.finish_telemetry();
}
