//! Ablation beyond the paper: sweep the decision boundary `h` of the
//! hotspot-aware uncertainty (Eq. 6).
//!
//! The paper fixes `h = 0.4` "since the datasets are imbalanced" without a
//! sensitivity study; this binary supplies one. `h` controls both where the
//! uncertainty score peaks during sampling *and* the detection threshold of
//! the final full-chip pass, so too-high values depress recall and too-low
//! values inflate false alarms.

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    run_active_method_avg, try_generate, write_json, ActiveMethod, ExperimentArgs,
};
use hotspot_layout::BenchmarkSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    h: f32,
    accuracy: f64,
    litho: f64,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_3().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let base = SamplingConfig::for_benchmark(bench.len());

    println!(
        "Sweep of the Eq. 6 decision boundary h on {} ({} repeats; paper fixes h = 0.4)",
        spec.name, args.repeats
    );
    println!("{:>6} {:>10} {:>12}", "h", "Acc(%)", "Litho#");
    let mut points = Vec::new();
    for h in [0.2f32, 0.3, 0.4, 0.5, 0.6] {
        let mut config = base.clone();
        config.boundary_h = h;
        config.detect_threshold = h;
        let result =
            run_active_method_avg(ActiveMethod::Ours, &bench, &config, args.seed, args.repeats);
        println!(
            "{:>6.2} {:>10.2} {:>12}",
            h,
            result.accuracy * 100.0,
            result.litho
        );
        points.push(SweepPoint {
            h,
            accuracy: result.accuracy,
            litho: result.litho as f64,
        });
    }

    // The paper's operating point must not be dominated: no swept h may beat
    // h = 0.4 on accuracy by a wide margin while also costing less litho.
    let reference = points
        .iter()
        .find(|p| (p.h - 0.4).abs() < 1e-6)
        .expect("h = 0.4 swept");
    for p in &points {
        assert!(
            !(p.accuracy > reference.accuracy + 0.03 && p.litho < reference.litho * 0.95),
            "h = {} strictly dominates the paper's choice",
            p.h
        );
    }
    write_json(&args.out, "sweep_h", &points);
    args.finish_telemetry();
}
