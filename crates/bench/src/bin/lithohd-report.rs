//! `lithohd-report` — journal analytics and the bench regression gate.
//!
//! Four subcommands over JSONL run journals (written with `--journal`):
//!
//! * `report <journal.jsonl> [--lint <lint.json>]` — render a Markdown
//!   report: per-run headline table, per-iteration trajectories with
//!   sparklines (temperature, ECE, batch yield, train loss, entropy
//!   weights), fault counters, and span latency quantiles. With `--lint`,
//!   a static-analysis section (findings by rule, zero-baseline badge) is
//!   appended from a `lithohd-lint check --json` report.
//! * `diff <a.jsonl> <b.jsonl>` — per-method, per-metric deltas between two
//!   journals.
//! * `render <journal.jsonl> --out <dir> [--max-clips <n>]` — render the
//!   offline SVG dashboard (method bars, trajectories, selection maps,
//!   reliability diagrams, clip geometry) plus a self-contained
//!   `index.html`.
//! * `gate <journal.jsonl> <baseline.json> [--tolerance-acc <pts>]
//!   [--tolerance-litho <pct>] [--tolerance-time <factor>]` — compare the
//!   journal against a committed `BENCH_*.json` baseline and exit nonzero
//!   on regression (accuracy drop beyond the tolerance, Litho# growth
//!   beyond the tolerance, or — opt-in — wall-time blowup).
//!
//! Exit codes: `0` success / gate passed, `1` gate regression, `2` usage or
//! I/O error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use hotspot_bench::journal::{
    evaluate_gate, load_baseline, method_for_selector, percentile, GateTolerances, Journal,
    RunRecord,
};
use hotspot_bench::profile::{
    evaluate_kernel_gate, load_kernel_baseline, looks_like_kernel_baseline,
};
use hotspot_bench::render::{render_dashboard, RenderOptions};

const USAGE: &str = "usage: lithohd-report <command>\n\
  report <journal.jsonl>                 render a Markdown report\n\
       [--lint <lint.json>]              append a static-analysis section\n\
                                         from `lithohd-lint check --json`\n\
  diff <a.jsonl> <b.jsonl>               per-metric deltas between journals\n\
  render <journal.jsonl> --out <dir>     render the SVG dashboard\n\
       [--max-clips <n>]                 clip geometry renderings (default 8)\n\
  gate <journal.jsonl> <baseline.json>   regression gate against a baseline\n\
       [--tolerance-acc <points>]        allowed accuracy drop (default 0.5)\n\
       [--tolerance-litho <percent>]     allowed Litho# increase (default 0)\n\
       [--tolerance-time <factor>]       allowed wall-time factor (off by default)\n\
  gate <fresh.json> <BENCH_kernels.json> --tolerance-time <factor>\n\
       kernel-microbench mode (auto-detected from the baseline shape): both\n\
       files are lithohd-profile sample arrays, gated on median wall time";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("gate") => cmd_gate(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn read_journal(path: &str) -> Result<Journal, String> {
    Journal::read(path).map_err(|e| format!("cannot read journal {path}: {e}"))
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut lint_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--lint" => {
                lint_path = Some(
                    iter.next()
                        .ok_or_else(|| "flag --lint expects a value".to_string())?
                        .clone(),
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let journal = read_journal(path)?;
    print!("{}", render_report(path, &journal));
    if let Some(lint_path) = lint_path {
        let text = std::fs::read_to_string(&lint_path)
            .map_err(|e| format!("cannot read lint report {lint_path}: {e}"))?;
        let lint: LintReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse lint report {lint_path}: {e}"))?;
        println!();
        print!("{}", render_lint_section(&lint_path, &lint));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let [path_a, path_b] = args else {
        return Err(USAGE.to_string());
    };
    let a = read_journal(path_a)?;
    let b = read_journal(path_b)?;
    print!("{}", render_diff(path_a, &a, path_b, &b));
    Ok(ExitCode::SUCCESS)
}

fn cmd_render(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut options = RenderOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        match arg.as_str() {
            "--out" => out_dir = Some(value("--out")?.clone()),
            "--max-clips" => {
                options.max_clips = value("--max-clips")?
                    .parse()
                    .map_err(|e| format!("bad --max-clips: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [journal_path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let out_dir = out_dir.ok_or_else(|| USAGE.to_string())?;
    let journal = read_journal(journal_path)?;
    let summary = render_dashboard(&journal, std::path::Path::new(&out_dir), &options)?;
    println!(
        "wrote {} file(s) to {out_dir} ({} run(s), {} clip rendering(s)); open {out_dir}/index.html",
        summary.files.len(),
        summary.runs,
        summary.clips,
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_gate(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut tolerances = GateTolerances::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("flag {flag} expects a value"))
        };
        match arg.as_str() {
            "--tolerance-acc" => {
                tolerances.accuracy_points = value("--tolerance-acc")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance-acc: {e}"))?;
            }
            "--tolerance-litho" => {
                tolerances.litho_percent = value("--tolerance-litho")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance-litho: {e}"))?;
            }
            "--tolerance-time" => {
                tolerances.time_factor = Some(
                    value("--tolerance-time")?
                        .parse()
                        .map_err(|e| format!("bad --tolerance-time: {e}"))?,
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [journal_path, baseline_path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let outcome = if looks_like_kernel_baseline(&baseline_text) {
        // Kernel-microbench mode: both sides are `lithohd-profile` sample
        // arrays, gated purely on wall time.
        let factor = tolerances.time_factor.ok_or_else(|| {
            "kernel baselines gate on wall time only: pass --tolerance-time <factor>".to_string()
        })?;
        let measured = load_kernel_baseline(journal_path)?;
        let baseline = load_kernel_baseline(baseline_path)?;
        evaluate_kernel_gate(&measured, &baseline, factor)
    } else {
        let journal = read_journal(journal_path)?;
        let baseline = load_baseline(baseline_path)?;
        evaluate_gate(&journal, &baseline, &tolerances)
    };

    println!("# Regression gate: `{journal_path}` vs `{baseline_path}`");
    println!();
    println!("| method | metric | baseline | measured | bound | status |");
    println!("|---|---|---:|---:|---:|---|");
    for check in &outcome.checks {
        let status = if check.ok { "ok" } else { "**REGRESSION**" };
        println!(
            "| {} | {} | {} | {} | {} | {status} |",
            check.method,
            check.metric,
            fmt_metric(check.metric, check.baseline),
            fmt_metric(check.metric, check.measured),
            fmt_metric(check.metric, check.bound),
        );
    }
    for error in &outcome.errors {
        println!();
        println!("**error:** {error}");
    }
    println!();
    if outcome.passed() {
        println!("gate: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("gate: FAIL");
        Ok(ExitCode::FAILURE)
    }
}

/// Formats a gate value in the metric's natural unit.
fn fmt_metric(metric: &str, value: f64) -> String {
    match metric {
        "accuracy" => format!("{:.2}%", value * 100.0),
        "litho" => format!("{value:.1}"),
        "kernel_ns" => {
            if value >= 1e6 {
                format!("{:.2}ms", value / 1e6)
            } else {
                format!("{:.1}µs", value / 1e3)
            }
        }
        _ => format!("{value:.2}s"),
    }
}

const SPARK: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}',
];

/// Renders a series as a Unicode sparkline (empty string for no data).
fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (Some(min), Some(max)) = (
        finite.iter().copied().reduce(f64::min),
        finite.iter().copied().reduce(f64::max),
    ) else {
        // No finite samples at all: every slot is a gap, not an empty string,
        // so the line keeps its width in the table.
        return values.iter().map(|_| '?').collect();
    };
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return '?';
            }
            if span <= 0.0 {
                // Constant series: a flat mid-level line, not a row of minima.
                return SPARK[SPARK.len() / 2];
            }
            let level = ((v - min) / span * (SPARK.len() - 1) as f64).round() as usize;
            SPARK[level.min(SPARK.len() - 1)]
        })
        .collect()
}

fn fmt_opt(value: Option<f64>, unit_scale: f64) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{:.3}", v * unit_scale),
        _ => "-".to_string(),
    }
}

fn render_report(path: &str, journal: &Journal) -> String {
    let mut out = String::new();
    let runs = journal.runs();
    let iterations = journal.iterations();

    let _ = writeln!(out, "# Run report: `{path}`");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} records ({} skipped line{}), {} run{}, {} iteration event{}.",
        journal.records.len(),
        journal.skipped_lines,
        if journal.skipped_lines == 1 { "" } else { "s" },
        runs.len(),
        if runs.len() == 1 { "" } else { "s" },
        iterations.len(),
        if iterations.len() == 1 { "" } else { "s" },
    );

    if !runs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Runs");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| run | method | accuracy | litho | false alarms | ECE before → after | degraded | elapsed |"
        );
        let _ = writeln!(out, "|---:|---|---:|---:|---:|---|---|---:|");
        for run in &runs {
            let method = method_for_selector(&run.selector).unwrap_or(run.selector.as_str());
            let _ = writeln!(
                out,
                "| {} | {} | {:.2}% | {} | {} | {:.4} → {:.4} | {} | {:.2}s |",
                run.run_id,
                method,
                run.accuracy * 100.0,
                run.litho,
                run.false_alarms,
                run.ece_before,
                run.ece_after,
                if run.degraded { "yes" } else { "no" },
                run.elapsed_ms as f64 / 1000.0,
            );
        }
        if let Some(faults) = render_fault_lines(&runs) {
            let _ = writeln!(out);
            out.push_str(&faults);
        }
        if let Some(shards) = render_shard_incidents(journal) {
            let _ = writeln!(out);
            out.push_str(&shards);
        }
    }

    // Per-run iteration trajectories.
    let mut by_run: BTreeMap<u64, Vec<&hotspot_bench::journal::IterationRecord>> = BTreeMap::new();
    for iteration in &iterations {
        by_run.entry(iteration.run_id).or_default().push(iteration);
    }
    for (run_id, rows) in &by_run {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Iterations (run {run_id})");
        let _ = writeln!(out);
        let temp: Vec<f64> = rows.iter().map(|r| r.temperature).collect();
        let ece: Vec<f64> = rows.iter().map(|r| r.ece).collect();
        let loss: Vec<f64> = rows.iter().map(|r| r.train_loss).collect();
        let _ = writeln!(out, "- temperature `{}`", sparkline(&temp));
        let _ = writeln!(out, "- ECE         `{}`", sparkline(&ece));
        let _ = writeln!(out, "- train loss  `{}`", sparkline(&loss));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| iter | temperature | ECE | batch | hotspots | labeled | loss | failed | ω1 | ω2 |"
        );
        let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for row in rows {
            let (w1, w2) = row
                .omega
                .map_or(("-".to_string(), "-".to_string()), |(w1, w2)| {
                    (format!("{w1:.3}"), format!("{w2:.3}"))
                });
            let _ = writeln!(
                out,
                "| {} | {:.4} | {:.4} | {} | {} | {} | {:.4} | {} | {} | {} |",
                row.iteration,
                row.temperature,
                row.ece,
                row.batch_size,
                row.batch_hotspots,
                row.labeled_size,
                row.train_loss,
                row.failed_labels,
                w1,
                w2,
            );
        }
    }

    if let Some(snapshot) = journal.final_snapshot() {
        if let Some(kernels) = render_kernel_counters(&snapshot.counters) {
            let _ = writeln!(out);
            out.push_str(&kernels);
        }
        if !snapshot.counters.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Counters");
            let _ = writeln!(out);
            let _ = writeln!(out, "| counter | value |");
            let _ = writeln!(out, "|---|---:|");
            for (name, value) in &snapshot.counters {
                let _ = writeln!(out, "| `{name}` | {value} |");
            }
        }
        if !snapshot.gauges.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Gauges");
            let _ = writeln!(out);
            let _ = writeln!(out, "| gauge | value |");
            let _ = writeln!(out, "|---|---:|");
            for (name, value) in &snapshot.gauges {
                let _ = writeln!(out, "| `{name}` | {value:.4} |");
            }
        }
        if !snapshot.histograms.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Histograms");
            let _ = writeln!(out);
            let _ = writeln!(out, "| histogram | count | mean | p50 | p95 | p99 | max |");
            let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|");
            for (name, h) in &snapshot.histograms {
                let _ = writeln!(
                    out,
                    "| `{name}` | {} | {:.4} | {} | {} | {} | {} |",
                    h.count,
                    h.mean,
                    fmt_opt(h.p50, 1.0),
                    fmt_opt(h.p95, 1.0),
                    fmt_opt(h.p99, 1.0),
                    fmt_opt(h.max, 1.0),
                );
            }
        }
    }

    let spans = journal.span_durations_us();
    if !spans.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Span latencies (ms)");
        let _ = writeln!(out);
        let _ = writeln!(out, "| span | count | mean | p50 | p95 | p99 |");
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
        for (span, durations) in &spans {
            let mean = durations.iter().sum::<f64>() / durations.len() as f64;
            let _ = writeln!(
                out,
                "| `{span}` | {} | {:.3} | {} | {} | {} |",
                durations.len(),
                mean / 1000.0,
                fmt_opt(percentile(durations, 0.50), 1e-3),
                fmt_opt(percentile(durations, 0.95), 1e-3),
                fmt_opt(percentile(durations, 0.99), 1e-3),
            );
        }
    }
    out
}

/// Renders the kernel performance section from the snapshot's `kernel.*`
/// counters: one row per hot kernel with calls, processed elements, nominal
/// FLOPs, and bytes moved, plus derived per-call intensity. `None` when the
/// snapshot carries no kernel counters (canonical journals withhold them).
fn render_kernel_counters(counters: &BTreeMap<String, u64>) -> Option<String> {
    // kernel -> (calls, elements, flops, bytes).
    let mut by_kernel: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for (name, &value) in counters {
        let Some(rest) = name.strip_prefix("kernel.") else {
            continue;
        };
        let Some((kernel, metric)) = rest.split_once('.') else {
            continue;
        };
        let entry = by_kernel.entry(kernel).or_default();
        match metric {
            "calls" => entry.0 = value,
            "elements" => entry.1 = value,
            "flops" => entry.2 = value,
            "bytes" => entry.3 = value,
            _ => {}
        }
    }
    if by_kernel.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "## Kernel performance counters");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| kernel | calls | elements | MFLOPs | MB moved | FLOPs/byte |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for (kernel, (calls, elements, flops, bytes)) in &by_kernel {
        let intensity = if *bytes > 0 {
            format!("{:.2}", *flops as f64 / *bytes as f64)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "| `{kernel}` | {calls} | {elements} | {:.2} | {:.2} | {intensity} |",
            *flops as f64 / 1e6,
            *bytes as f64 / 1e6,
        );
    }
    Some(out)
}

/// Renders the fault meters of the runs that saw any fault, or `None` when
/// every run was fault-free.
fn render_fault_lines(runs: &[RunRecord]) -> Option<String> {
    let mut out = String::new();
    for run in runs {
        if run.label_failures + run.oracle_retries + run.oracle_giveups + run.quorum_votes == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "- run {}: {} retries, {} giveups, {} label failures, {} quorum votes{}",
            run.run_id,
            run.oracle_retries,
            run.oracle_giveups,
            run.label_failures,
            run.quorum_votes,
            if run.degraded {
                " — **degraded**"
            } else {
                ""
            },
        );
    }
    (!out.is_empty()).then(|| format!("Fault activity:\n\n{out}"))
}

/// Renders the coordinator's dead/hung-worker incident log as a per-shard
/// table, or `None` when the journal recorded none (canonical journals
/// withhold the coordinator target entirely).
fn render_shard_incidents(journal: &Journal) -> Option<String> {
    let incidents = journal.shard_incidents();
    if incidents.is_empty() {
        return None;
    }
    // shard -> (dead, hung, salvaged, orphaned).
    let mut by_shard: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
    for incident in &incidents {
        let entry = by_shard.entry(incident.shard).or_default();
        if incident.dead {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
        entry.2 += incident.salvaged;
        entry.3 += incident.orphaned;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Shard incidents ({} worker{} lost):",
        incidents.len(),
        if incidents.len() == 1 { "" } else { "s" },
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| shard | dead | hung | salvaged | reassigned |");
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for (shard, (dead, hung, salvaged, orphaned)) in &by_shard {
        let _ = writeln!(
            out,
            "| {shard} | {dead} | {hung} | {salvaged} | {orphaned} |"
        );
    }
    Some(out)
}

/// A `lithohd-lint check --json` report, read back for the static-analysis
/// section. Mirrors the linter's `JsonReport` shape; unknown fields are
/// ignored so the two binaries can evolve independently.
#[derive(serde::Deserialize)]
struct LintReport {
    files_scanned: usize,
    new_violations: Vec<LintFinding>,
    // `Option` rather than `Vec` so reports from a linter predating either
    // list still parse (absent key deserializes as `None`).
    grandfathered: Option<Vec<LintFinding>>,
    suppressed: Option<Vec<LintFinding>>,
}

impl LintReport {
    fn grandfathered(&self) -> &[LintFinding] {
        self.grandfathered.as_deref().unwrap_or_default()
    }

    fn suppressed(&self) -> &[LintFinding] {
        self.suppressed.as_deref().unwrap_or_default()
    }
}

/// The slice of a lint finding the report cares about.
#[derive(serde::Deserialize)]
struct LintFinding {
    rule: String,
    severity: String,
}

/// Renders the static-analysis section: a zero-baseline badge (the whole
/// point of burning the baseline down) and a findings-by-rule table.
fn render_lint_section(path: &str, lint: &LintReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Static analysis: `{path}`");
    let _ = writeln!(out);
    let badge = if lint.new_violations.is_empty() && lint.grandfathered().is_empty() {
        "**baseline: zero** — no findings, no grandfathered debt".to_string()
    } else if lint.new_violations.is_empty() {
        format!(
            "baseline: {} grandfathered finding(s) remain",
            lint.grandfathered().len()
        )
    } else {
        format!(
            "**{} new violation(s)** ({} grandfathered)",
            lint.new_violations.len(),
            lint.grandfathered().len()
        )
    };
    let _ = writeln!(
        out,
        "{badge} · {} file(s) scanned · {} suppressed",
        lint.files_scanned,
        lint.suppressed().len()
    );

    // rule -> (new, grandfathered, suppressed), worst severity seen.
    let mut by_rule: BTreeMap<&str, (usize, usize, usize, &str)> = BTreeMap::new();
    let buckets: [(&[LintFinding], usize); 3] = [
        (&lint.new_violations, 0),
        (lint.grandfathered(), 1),
        (lint.suppressed(), 2),
    ];
    for (findings, bucket) in buckets {
        for finding in findings {
            let entry = by_rule.entry(&finding.rule).or_insert((0, 0, 0, ""));
            match bucket {
                0 => entry.0 += 1,
                1 => entry.1 += 1,
                _ => entry.2 += 1,
            }
            if entry.3.is_empty() || finding.severity == "Error" {
                entry.3 = &finding.severity;
            }
        }
    }
    if !by_rule.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| rule | severity | new | grandfathered | suppressed |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|");
        for (rule, (new, old, suppressed, severity)) in &by_rule {
            let _ = writeln!(
                out,
                "| `{rule}` | {} | {new} | {old} | {suppressed} |",
                severity.to_lowercase()
            );
        }
    }
    out
}

/// Per-method mean (accuracy, litho, seconds) over a journal's runs.
fn method_means(journal: &Journal) -> BTreeMap<String, (f64, f64, f64)> {
    let mut sums: BTreeMap<String, (f64, f64, f64, usize)> = BTreeMap::new();
    for run in journal.runs() {
        let method =
            method_for_selector(&run.selector).map_or_else(|| run.selector.clone(), str::to_string);
        let entry = sums.entry(method).or_insert((0.0, 0.0, 0.0, 0));
        entry.0 += run.accuracy;
        entry.1 += run.litho as f64;
        entry.2 += run.elapsed_ms as f64 / 1000.0;
        entry.3 += 1;
    }
    sums.into_iter()
        .map(|(method, (acc, litho, secs, n))| {
            let n = n as f64;
            (method, (acc / n, litho / n, secs / n))
        })
        .collect()
}

fn render_diff(path_a: &str, a: &Journal, path_b: &str, b: &Journal) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Journal diff: `{path_a}` vs `{path_b}`");
    let _ = writeln!(out);
    let means_a = method_means(a);
    let means_b = method_means(b);
    let methods: Vec<&String> = means_a.keys().chain(means_b.keys()).collect();
    let mut seen = Vec::new();
    let _ = writeln!(out, "| method | metric | a | b | delta |");
    let _ = writeln!(out, "|---|---|---:|---:|---:|");
    for method in methods {
        if seen.contains(&method) {
            continue;
        }
        seen.push(method);
        match (means_a.get(method), means_b.get(method)) {
            (Some(&(acc_a, litho_a, secs_a)), Some(&(acc_b, litho_b, secs_b))) => {
                let _ = writeln!(
                    out,
                    "| {method} | accuracy | {:.2}% | {:.2}% | {:+.2}pp |",
                    acc_a * 100.0,
                    acc_b * 100.0,
                    (acc_b - acc_a) * 100.0,
                );
                let _ = writeln!(
                    out,
                    "| {method} | litho | {litho_a:.1} | {litho_b:.1} | {:+.1} |",
                    litho_b - litho_a,
                );
                let _ = writeln!(
                    out,
                    "| {method} | wall_time | {secs_a:.2}s | {secs_b:.2}s | {:+.2}s |",
                    secs_b - secs_a,
                );
            }
            (Some(_), None) => {
                let _ = writeln!(out, "| {method} | - | present | missing | - |");
            }
            (None, Some(_)) => {
                let _ = writeln!(out, "| {method} | - | missing | present | - |");
            }
            (None, None) => {}
        }
    }

    // Span-latency deltas where both journals timed the same span.
    let spans_a = a.span_durations_us();
    let spans_b = b.span_durations_us();
    let shared: Vec<&String> = spans_a
        .keys()
        .filter(|k| spans_b.contains_key(*k))
        .collect();
    if !shared.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Span p95 deltas (ms)");
        let _ = writeln!(out);
        let _ = writeln!(out, "| span | a | b | delta |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for span in shared {
            let (Some(pa), Some(pb)) = (
                percentile(&spans_a[span], 0.95),
                percentile(&spans_b[span], 0.95),
            ) else {
                continue;
            };
            let _ = writeln!(
                out,
                "| `{span}` | {:.3} | {:.3} | {:+.3} |",
                pa / 1000.0,
                pb / 1000.0,
                (pb - pa) / 1000.0,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{
        fmt_opt, render_kernel_counters, render_lint_section, render_shard_incidents, sparkline,
        BTreeMap, Journal, LintReport, SPARK,
    };

    #[test]
    fn lint_section_zero_baseline_badge() {
        let lint: LintReport = serde_json::from_str(
            r#"{"files_scanned": 173, "new_violations": [], "grandfathered": [], "suppressed": []}"#,
        )
        .unwrap();
        let section = render_lint_section("lint.json", &lint);
        assert!(section.contains("**baseline: zero**"));
        assert!(section.contains("173 file(s) scanned"));
        assert!(!section.contains("| rule |"), "no table without findings");
    }

    #[test]
    fn lint_section_findings_by_rule_table() {
        let lint: LintReport = serde_json::from_str(
            r#"{
                "files_scanned": 3,
                "new_violations": [
                    {"rule": "lock-order", "severity": "Error"},
                    {"rule": "lock-order", "severity": "Error"},
                    {"rule": "detached-spawn", "severity": "Warning"}
                ],
                "grandfathered": [{"rule": "panic-safety", "severity": "Warning"}],
                "suppressed": [{"rule": "lock-order", "severity": "Error"}]
            }"#,
        )
        .unwrap();
        let section = render_lint_section("lint.json", &lint);
        assert!(section.contains("**3 new violation(s)** (1 grandfathered)"));
        assert!(section.contains("| `lock-order` | error | 2 | 0 | 1 |"));
        assert!(section.contains("| `detached-spawn` | warning | 1 | 0 | 0 |"));
        assert!(section.contains("| `panic-safety` | warning | 0 | 1 | 0 |"));
    }

    #[test]
    fn lint_report_tolerates_extra_fields() {
        // The linter's Finding carries path/line/message/excerpt too; the
        // report must not choke on them.
        let lint: LintReport = serde_json::from_str(
            r#"{
                "files_scanned": 1,
                "new_violations": [
                    {"rule": "x", "severity": "Error", "path": "a.rs", "line": 3,
                     "message": "m", "excerpt": "e", "suppression_reason": null}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(lint.new_violations.len(), 1);
        assert!(lint.grandfathered().is_empty());
    }

    #[test]
    fn kernel_counters_render_per_kernel_rows() {
        let mut counters = BTreeMap::new();
        counters.insert("kernel.dct.calls".to_string(), 100u64);
        counters.insert("kernel.dct.elements".to_string(), 6400);
        counters.insert("kernel.dct.flops".to_string(), 2_000_000);
        counters.insert("kernel.dct.bytes".to_string(), 1_000_000);
        counters.insert("kernel.aerial.calls".to_string(), 4);
        counters.insert("litho.oracle.calls".to_string(), 9); // not a kernel
        let section = render_kernel_counters(&counters).unwrap();
        assert!(section.contains("| `dct` | 100 | 6400 | 2.00 | 1.00 | 2.00 |"));
        assert!(section.contains("| `aerial` | 4 |"));
        assert!(!section.contains("oracle"));
        assert!(render_kernel_counters(&BTreeMap::new()).is_none());
    }

    #[test]
    fn sparkline_spans_min_to_max() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(line.chars().next(), Some(SPARK[0]));
        assert_eq!(line.chars().last(), Some(SPARK[SPARK.len() - 1]));
    }

    #[test]
    fn sparkline_constant_series_is_a_flat_mid_line() {
        let mid = SPARK[SPARK.len() / 2];
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), mid.to_string().repeat(3));
    }

    #[test]
    fn sparkline_non_finite_values_become_gaps() {
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY]), "??");
        let line = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(line.chars().nth(1), Some('?'));
        assert_eq!(line.chars().count(), 3);
    }

    #[test]
    fn sparkline_empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn shard_incidents_render_per_shard_not_aggregated() {
        let text = concat!(
            r#"{"type":"event","target":"shard.coordinator","message":"shard worker lost","batch":2,"shard":1,"dead":true,"salvaged":3,"orphaned":2}"#,
            "\n",
            r#"{"type":"event","target":"shard.coordinator","message":"shard worker lost","batch":4,"shard":2,"dead":false,"salvaged":0,"orphaned":6}"#,
            "\n",
        );
        let section = render_shard_incidents(&Journal::parse_str(text)).unwrap();
        assert!(section.contains("2 workers lost"));
        assert!(section.contains("| 1 | 1 | 0 | 3 | 2 |"));
        assert!(section.contains("| 2 | 0 | 1 | 0 | 6 |"));
        assert!(render_shard_incidents(&Journal::parse_str("")).is_none());
    }

    #[test]
    fn fmt_opt_absorbs_missing_and_non_finite() {
        assert_eq!(fmt_opt(None, 1.0), "-");
        assert_eq!(fmt_opt(Some(f64::NAN), 1.0), "-");
        assert_eq!(fmt_opt(Some(f64::INFINITY), 1.0), "-");
        assert_eq!(fmt_opt(Some(0.25), 100.0), "25.000");
    }
}
