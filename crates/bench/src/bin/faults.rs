//! Robustness sweep — accuracy / Litho# degradation under oracle faults.
//!
//! Runs the entropy sampler on an ICCAD16-2-like benchmark against a
//! seeded fault-injecting oracle behind the retry/backoff layer, sweeping
//! two fault axes independently:
//!
//! * **Transient failures** (crashed/timed-out simulation jobs): swept at a
//!   fixed retry policy; failed jobs bill nothing, so Litho# should stay
//!   flat while retries absorb the faults.
//! * **Silent label flips** (corrupted results that *look* valid): swept
//!   with and without 3-vote quorum re-labelling; the quorum trades extra
//!   billable re-simulations for accuracy recovered from the flips.
//!
//! Each sweep prints a degradation curve against the fault-free baseline
//! and everything is written to `target/experiments/faults.json`.
//!
//! This binary doubles as the sharding chaos harness: `--workers <n>`
//! shards every labelling batch across N oracle worker threads, and
//! `--kill-shard <i>@<k>` murders worker `i` on the `k`-th labelling batch
//! of every run. Dead-shard recovery (checkpoint salvage plus deterministic
//! recomputation of the orphaned clips) makes the murdered campaign finish
//! with exactly the Litho# accounting and canonical-journal bytes of the
//! undisturbed one — the CI chaos job asserts precisely that.

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    run_active_method, run_active_method_checkpointed, run_active_method_faulty,
    run_active_method_faulty_checkpointed, run_active_method_faulty_sharded,
    run_active_method_faulty_sharded_checkpointed, run_active_method_sharded,
    run_active_method_sharded_checkpointed, try_generate, write_json, ActiveMethod,
    CheckpointedSequence, ExperimentArgs, FaultyMethodResult, ShardSpec,
};
use hotspot_layout::BenchmarkSpec;
use hotspot_litho::FaultRates;
use serde::Serialize;

const TRANSIENT_RATES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];
const FLIP_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.1];

#[derive(Debug, Serialize)]
struct FaultsResult {
    baseline_accuracy: f64,
    baseline_litho: usize,
    transient_sweep: Vec<FaultyMethodResult>,
    flip_sweep_raw: Vec<FaultyMethodResult>,
    flip_sweep_quorum: Vec<FaultyMethodResult>,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_2().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let config = SamplingConfig::for_benchmark(bench.len());
    let mut sequence = CheckpointedSequence::from_args(&args);
    let shard = ShardSpec::from_args(&args);

    let baseline = match (sequence.as_mut(), shard.as_ref()) {
        (Some(seq), Some(spec)) => run_active_method_sharded_checkpointed(
            ActiveMethod::Ours,
            &bench,
            &config,
            args.seed,
            spec,
            seq,
        ),
        (Some(seq), None) => {
            run_active_method_checkpointed(ActiveMethod::Ours, &bench, &config, args.seed, seq)
        }
        (None, Some(spec)) => {
            run_active_method_sharded(ActiveMethod::Ours, &bench, &config, args.seed, spec)
        }
        (None, None) => run_active_method(ActiveMethod::Ours, &bench, &config, args.seed),
    };
    println!(
        "baseline ({}): acc {:.2}%  litho {}",
        bench.spec().name,
        baseline.accuracy * 100.0,
        baseline.litho
    );

    // Axis 1: transient failures, retry/backoff only.
    println!("\ntransient-failure sweep (retry/backoff, no quorum)");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "transient", "acc%", "litho", "retries", "giveups", "lost"
    );
    let transient_sweep: Vec<FaultyMethodResult> = TRANSIENT_RATES
        .iter()
        .map(|&transient| {
            let r = run_faulty(
                &bench,
                &config,
                args.seed,
                FaultRates::transient_only(transient),
                1,
                &mut sequence,
                &shard,
            );
            print_row(&r, transient);
            r
        })
        .collect();

    // Axis 2: silent label flips, with and without quorum re-labelling.
    let flip_sweep_raw = flip_sweep(&bench, &config, &args, 1, &mut sequence, &shard);
    let flip_sweep_quorum = flip_sweep(&bench, &config, &args, 3, &mut sequence, &shard);

    write_json(
        &args.out,
        "faults",
        &FaultsResult {
            baseline_accuracy: baseline.accuracy,
            baseline_litho: baseline.litho,
            transient_sweep,
            flip_sweep_raw,
            flip_sweep_quorum,
        },
    );
    args.finish_telemetry();
}

fn run_faulty(
    bench: &hotspot_layout::GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    sequence: &mut Option<CheckpointedSequence>,
    shard: &Option<ShardSpec>,
) -> FaultyMethodResult {
    match (sequence.as_mut(), shard.as_ref()) {
        (Some(seq), Some(spec)) => run_active_method_faulty_sharded_checkpointed(
            ActiveMethod::Ours,
            bench,
            config,
            seed,
            rates,
            quorum,
            spec,
            seq,
        ),
        (Some(seq), None) => run_active_method_faulty_checkpointed(
            ActiveMethod::Ours,
            bench,
            config,
            seed,
            rates,
            quorum,
            seq,
        ),
        (None, Some(spec)) => run_active_method_faulty_sharded(
            ActiveMethod::Ours,
            bench,
            config,
            seed,
            rates,
            quorum,
            spec,
        ),
        (None, None) => {
            run_active_method_faulty(ActiveMethod::Ours, bench, config, seed, rates, quorum)
        }
    }
}

fn flip_sweep(
    bench: &hotspot_layout::GeneratedBenchmark,
    config: &SamplingConfig,
    args: &ExperimentArgs,
    quorum: usize,
    sequence: &mut Option<CheckpointedSequence>,
    shard: &Option<ShardSpec>,
) -> Vec<FaultyMethodResult> {
    println!(
        "\nlabel-flip sweep ({})",
        if quorum > 1 {
            "3-vote quorum re-labelling"
        } else {
            "no quorum — flips go undetected"
        }
    );
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "flip", "acc%", "litho", "extra", "retries", "lost"
    );
    FLIP_RATES
        .iter()
        .map(|&flip| {
            let r = run_faulty(
                bench,
                config,
                args.seed,
                FaultRates {
                    flip,
                    ..FaultRates::default()
                },
                quorum,
                sequence,
                shard,
            );
            println!(
                "{:>10.2} {:>8.2} {:>8} {:>8} {:>8} {:>8}",
                flip,
                r.accuracy * 100.0,
                r.litho,
                r.extra_simulations,
                r.retries,
                r.label_failures
            );
            r
        })
        .collect()
}

fn print_row(r: &FaultyMethodResult, rate: f64) {
    println!(
        "{:>10.2} {:>8.2} {:>8} {:>8} {:>8} {:>8}",
        rate,
        r.accuracy * 100.0,
        r.litho,
        r.retries,
        r.giveups,
        r.label_failures
    );
}
