//! Fig. 5 — hotspot distribution and sampled clips on the layout map.
//!
//! Lays the ICCAD16-2-like benchmark's clips out on their layout grid and
//! renders, for each method (PM-exact, TS, QP, Ours), an ASCII map marking
//! real hotspot positions (`x`) and litho-simulated clips (`#`; `X` where a
//! hotspot was itself simulated). The shaded area of the paper's figure is
//! the litho overhead — visibly near-total for PM-exact and sparse for the
//! active samplers.

use hotspot_active::SamplingConfig;
use hotspot_baselines::PatternMatcher;
use hotspot_bench::{try_generate, write_json, ActiveMethod, ExperimentArgs};
use hotspot_layout::BenchmarkSpec;
use hotspot_layout::GeneratedBenchmark;
use hotspot_litho::Label;
use serde::Serialize;
use std::collections::HashSet;

#[derive(Debug, Serialize)]
struct MapResult {
    method: String,
    sampled: usize,
    hotspots: usize,
    map: Vec<String>,
}

fn render_map(bench: &GeneratedBenchmark, sampled: &[usize]) -> Vec<String> {
    let n = bench.len();
    let grid = (n as f64).sqrt().ceil() as usize;
    let sampled: HashSet<usize> = sampled.iter().copied().collect();
    let mut lines = Vec::with_capacity(grid);
    for row in 0..grid {
        let mut line = String::with_capacity(grid);
        for col in 0..grid {
            let idx = row * grid + col;
            if idx >= n {
                line.push(' ');
                continue;
            }
            let hot = bench.labels()[idx] == Label::Hotspot;
            let sim = sampled.contains(&idx);
            line.push(match (hot, sim) {
                (true, true) => 'X',
                (true, false) => 'x',
                (false, true) => '#',
                (false, false) => '.',
            });
        }
        lines.push(line);
    }
    lines
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_2().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let config = SamplingConfig::for_benchmark(bench.len());

    let mut results = Vec::new();

    // PM-exact samples every cluster representative.
    let pm = PatternMatcher::exact().run(&bench);
    results.push(("PM-exact".to_owned(), pm.sampled_indices));

    // The three learning methods sample their labelled sets.
    for method in [ActiveMethod::Ts, ActiveMethod::Qp, ActiveMethod::Ours] {
        let framework = hotspot_active::SamplingFramework::new(config.clone());
        let mut selector = method.selector();
        let outcome = framework
            .run(&bench, selector.as_mut(), args.seed)
            .expect("framework run succeeds");
        results.push((method.label().to_owned(), outcome.sampled_indices));
    }

    println!(
        "Fig. 5: hotspot distribution and sampled clips, {} ({} clips, {} hotspots)",
        spec.name,
        bench.len(),
        bench.hotspot_count()
    );
    println!("legend: x hotspot, # litho-simulated, X both, . untouched");
    let mut json = Vec::new();
    for (method, sampled) in results {
        let map = render_map(&bench, &sampled);
        println!();
        println!("--- {method} ({} litho-clips) ---", sampled.len());
        for line in &map {
            println!("{line}");
        }
        json.push(MapResult {
            method,
            sampled: sampled.len(),
            hotspots: bench.hotspot_count(),
            map,
        });
    }
    write_json(&args.out, "fig5", &json);
    args.finish_telemetry();
}
