//! Table III — component-effectiveness ablation of the entropy-based method.
//!
//! Runs the framework with each component removed — "w/o.E" (fixed equal
//! weights instead of entropy weighting), "w/o.D" (no diversity), "w/o.U"
//! (no uncertainty) — against the full method, across the four evaluated
//! benchmarks.

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    evaluated_specs, ratio_row, render_table, run_active_method_avg, try_generate, write_json,
    ActiveMethod, ExperimentArgs, MethodResult, TableRow,
};

const COLUMNS: [&str; 4] = ["w/o.E", "w/o.D", "w/o.U", "Full"];

fn main() {
    let args = ExperimentArgs::from_env();
    let specs = evaluated_specs(args.scale);

    let mut rows = Vec::new();
    let mut results: Vec<(String, MethodResult)> = Vec::new();
    for spec in &specs {
        let bench = try_generate(spec, args.seed).expect("benchmark generation succeeds");
        let base = SamplingConfig::for_benchmark(bench.len());
        let variants = [
            ("w/o.E", base.clone().without_entropy_weighting()),
            ("w/o.D", base.clone().without_diversity()),
            ("w/o.U", base.clone().without_uncertainty()),
            ("Full", base.clone()),
        ];
        let mut cells = Vec::new();
        for (name, config) in variants {
            let result =
                run_active_method_avg(ActiveMethod::Ours, &bench, &config, args.seed, args.repeats);
            hotspot_telemetry::info(
                "bench.table3",
                "ablation variant finished",
                &[
                    ("benchmark", spec.name.as_str().into()),
                    ("variant", name.into()),
                    ("accuracy", result.accuracy.into()),
                    ("litho", (result.litho as u64).into()),
                ],
            );
            cells.push((result.accuracy, result.litho as f64));
            results.push((name.to_owned(), result));
        }
        rows.push(TableRow {
            label: spec.name.clone(),
            cells,
            percent: true,
        });
    }

    let (avg, ratio) = ratio_row(&rows);
    rows.push(avg);
    rows.push(ratio);

    println!(
        "Table III: components effectiveness of the entropy-based method (scale {}, seed {}, {} repeats)",
        args.scale, args.seed, args.repeats
    );
    println!("{}", render_table(&COLUMNS, &rows));
    write_json(&args.out, "table3", &results);
    args.finish_telemetry();
}
