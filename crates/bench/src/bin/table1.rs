//! Table I — statistics of the benchmark suite.
//!
//! Prints the HS / NHS / tech-node rows for ICCAD12 and ICCAD16-1..4 at the
//! requested `--scale`, and verifies by generation that the synthetic suite
//! actually realises those statistics (for the smaller suites; pass
//! `--scale 1.0` to verify the full-size ICCAD12 population too).

use hotspot_bench::{write_json, ExperimentArgs};
use hotspot_layout::{bench_suite, BenchmarkStats, GeneratedBenchmark};

fn main() {
    let args = ExperimentArgs::from_env();
    let specs = bench_suite(args.scale);

    println!("Table I: statistics of benchmarks (scale {})", args.scale);
    println!(
        "{:<12} {:>8} {:>10} {:>6}",
        "Benchmarks", "HS #", "NHS #", "Tech(nm)"
    );
    let mut stats = Vec::new();
    for spec in &specs {
        let s = BenchmarkStats::from(spec);
        println!("{s}");
        stats.push(s);
    }

    // Generate and verify realised counts for every benchmark the scale
    // keeps small enough to be quick; ICCAD12 is included above ~0.05 full
    // scale only when explicitly asked for.
    println!();
    println!("verification by generation:");
    for spec in &specs {
        if spec.total() > 25_000 && args.scale < 1.0 {
            println!(
                "{:<12} skipped (use --scale 1.0 to generate the full population)",
                spec.name
            );
            continue;
        }
        let bench = GeneratedBenchmark::generate(spec, args.seed).expect("generation succeeds");
        let ok = bench.hotspot_count() == spec.hotspots && bench.len() == spec.total();
        println!(
            "{:<12} generated {:>8} clips, {:>7} hotspots  [{}]",
            spec.name,
            bench.len(),
            bench.hotspot_count(),
            if ok { "ok" } else { "MISMATCH" }
        );
        assert!(ok, "generated counts diverge from the specification");
    }

    write_json(&args.out, "table1", &stats);
    args.finish_telemetry();
}
