//! `pshd` — seeds and refreshes the committed bench baseline.
//!
//! Runs the four learning-based samplers (Ours, TS, QP, Random) on the
//! ICCAD12-style benchmark and writes `BENCH_pshd.json` — the
//! accuracy / Litho# / wall-time trajectory `lithohd-report gate` (and the
//! CI `gate` job) compares later runs against. Runs are seeded, so the same
//! `--scale`/`--seed`/`--repeats` reproduce the same accuracy and Litho#
//! (wall time varies with the machine; the gate ignores it by default).
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! cargo run --release --bin pshd -- --scale 0.02 --seed 1 --repeats 1 \
//!     --workers-sweep 1,2,4 --out .
//! ```
//!
//! With `--checkpoint-dir <dir>` the harness persists crash-safe run-state
//! checkpoints every `--checkpoint-every` iterations; `--resume` continues
//! an interrupted invocation from the newest valid checkpoint without
//! re-billing a single litho simulation, reproducing the uninterrupted
//! run's metrics (and, under `--canonical-journal`, its journal bytes)
//! exactly.
//!
//! With `--workers <n>` every labelling batch is sharded across N oracle
//! worker threads and merged deterministically — accuracy, Litho#, and the
//! canonical journal are byte-identical for every N (the CI
//! shard-determinism job compares N=1 against N=4).
//!
//! With `--workers-sweep <n,n,...>` the seeder appends shard-scaling rows:
//! the paper's method re-run at each listed worker count, tagged with a
//! `workers` field in `BENCH_pshd.json`. Accuracy and Litho# in those rows
//! equal the base `Ours` row by worker-count invariance; their wall-time
//! column is what lets `lithohd-report gate --tolerance-time` track shard
//! scaling. The committed baseline carries rows for 1, 2, and 4 workers
//! (the regeneration command above).

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    render_table, run_active_method_avg, run_active_method_avg_checkpointed,
    run_active_method_avg_sharded, run_active_method_avg_sharded_checkpointed, try_generate,
    write_json, ActiveMethod, CheckpointedSequence, ExperimentArgs, MethodResult, ShardSpec,
    TableRow,
};
use hotspot_layout::BenchmarkSpec;

const METHODS: [ActiveMethod; 4] = [
    ActiveMethod::Ours,
    ActiveMethod::Ts,
    ActiveMethod::Qp,
    ActiveMethod::Random,
];

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad12().scaled(args.scale);
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let config = SamplingConfig::for_benchmark(bench.len());

    let mut sequence = CheckpointedSequence::from_args(&args);
    let shard = ShardSpec::from_args(&args);
    let mut results: Vec<MethodResult> = METHODS
        .iter()
        .map(|&method| match (sequence.as_mut(), shard.as_ref()) {
            (Some(seq), Some(spec)) => run_active_method_avg_sharded_checkpointed(
                method,
                &bench,
                &config,
                args.seed,
                args.repeats,
                spec,
                seq,
            ),
            (Some(seq), None) => run_active_method_avg_checkpointed(
                method,
                &bench,
                &config,
                args.seed,
                args.repeats,
                seq,
            ),
            (None, Some(spec)) => run_active_method_avg_sharded(
                method,
                &bench,
                &config,
                args.seed,
                args.repeats,
                spec,
            ),
            (None, None) => run_active_method_avg(method, &bench, &config, args.seed, args.repeats),
        })
        .collect();

    // Shard-scaling rows: the paper's method once per swept worker count,
    // appended after the four base rows. Accuracy and Litho# are
    // worker-count-invariant, so only the wall-time column carries new
    // information — exactly what the gate's `--tolerance-time` mode reads.
    for &workers in &args.workers_sweep {
        let spec = ShardSpec {
            workers,
            kill: None,
            dir: None,
        };
        results.push(run_active_method_avg_sharded(
            ActiveMethod::Ours,
            &bench,
            &config,
            args.seed,
            args.repeats,
            &spec,
        ));
    }

    let labels: Vec<&str> = METHODS.iter().map(|m| m.label()).collect();
    let rows = vec![TableRow {
        label: spec.name.clone(),
        cells: results
            .iter()
            .take(METHODS.len())
            .map(|r| (r.accuracy, r.litho as f64))
            .collect(),
        percent: true,
    }];
    println!(
        "PSHD baseline (scale {}, seed {}, {} repeats)",
        args.scale, args.seed, args.repeats
    );
    println!("{}", render_table(&labels, &rows));
    for row in results.iter().skip(METHODS.len()) {
        let workers = row.workers.unwrap_or(1);
        println!(
            "shard scaling: Ours @ {workers} worker(s) — {:.2}% / Litho# {} / {:.2}s",
            row.accuracy * 100.0,
            row.litho,
            row.elapsed.as_secs_f64()
        );
    }
    write_json(&args.out, "BENCH_pshd", &results);
    args.finish_telemetry();
}
