//! `pshd` — seeds and refreshes the committed bench baseline.
//!
//! Runs the four learning-based samplers (Ours, TS, QP, Random) on the
//! ICCAD12-style benchmark and writes `BENCH_pshd.json` — the
//! accuracy / Litho# / wall-time trajectory `lithohd-report gate` (and the
//! CI `gate` job) compares later runs against. Runs are seeded, so the same
//! `--scale`/`--seed`/`--repeats` reproduce the same accuracy and Litho#
//! (wall time varies with the machine; the gate ignores it by default).
//!
//! Regenerate the committed baseline with:
//!
//! ```text
//! cargo run --release --bin pshd -- --scale 0.02 --seed 1 --repeats 1 --out .
//! ```
//!
//! With `--checkpoint-dir <dir>` the harness persists crash-safe run-state
//! checkpoints every `--checkpoint-every` iterations; `--resume` continues
//! an interrupted invocation from the newest valid checkpoint without
//! re-billing a single litho simulation, reproducing the uninterrupted
//! run's metrics (and, under `--canonical-journal`, its journal bytes)
//! exactly.

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    render_table, run_active_method_avg, run_active_method_avg_checkpointed, try_generate,
    write_json, ActiveMethod, CheckpointedSequence, ExperimentArgs, MethodResult, TableRow,
};
use hotspot_layout::BenchmarkSpec;

const METHODS: [ActiveMethod; 4] = [
    ActiveMethod::Ours,
    ActiveMethod::Ts,
    ActiveMethod::Qp,
    ActiveMethod::Random,
];

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad12().scaled(args.scale);
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");
    let config = SamplingConfig::for_benchmark(bench.len());

    let mut sequence = CheckpointedSequence::from_args(&args);
    let results: Vec<MethodResult> = METHODS
        .iter()
        .map(|&method| match sequence.as_mut() {
            Some(seq) => run_active_method_avg_checkpointed(
                method,
                &bench,
                &config,
                args.seed,
                args.repeats,
                seq,
            ),
            None => run_active_method_avg(method, &bench, &config, args.seed, args.repeats),
        })
        .collect();

    let labels: Vec<&str> = METHODS.iter().map(|m| m.label()).collect();
    let rows = vec![TableRow {
        label: spec.name.clone(),
        cells: results
            .iter()
            .map(|r| (r.accuracy, r.litho as f64))
            .collect(),
        percent: true,
    }];
    println!(
        "PSHD baseline (scale {}, seed {}, {} repeats)",
        args.scale, args.seed, args.repeats
    );
    println!("{}", render_table(&labels, &rows));
    write_json(&args.out, "BENCH_pshd", &results);
    args.finish_telemetry();
}
