//! `lithohd-profile` — deterministic microbench over the five hot kernels.
//!
//! Times the ROADMAP-item-1 hot loops (conv2d forward, 8×8 block DCT, GMM
//! EM, diversity scoring, aerial-image convolution) on fixed seeded inputs
//! with a fixed warmup and a median over repeated batched samples, then
//! writes a JSON array of `KernelSample`s. No statistics framework: each
//! sample times `batch` back-to-back iterations behind
//! `std::hint::black_box` and divides, and the median over samples is the
//! reported number — the same shape `lithohd-report gate --tolerance-time`
//! compares against the committed `BENCH_kernels.json` baseline.
//!
//! The workloads are deterministic (seeded inputs, fixed shapes), so two
//! runs measure the same arithmetic; only the clock varies.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use hotspot_active::diversity_scores;
use hotspot_bench::profile::{median_ns, KernelSample};
use hotspot_features::Dct2d;
use hotspot_gmm::{GaussianMixture, GmmConfig};
use hotspot_litho::GaussianKernel;
use hotspot_nn::{Conv2d, InitRng, Layer, Matrix};

const USAGE: &str = "usage: lithohd-profile [--out <path>] [--samples <n>] [--warmup <n>]\n\
  --out <path>      write the JSON sample array here (default: stdout only)\n\
  --samples <n>     timed samples per kernel, median reported (default 9)\n\
  --warmup <n>      untimed warmup samples per kernel (default 2)";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut samples = 9usize;
    let mut warmup = 2usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("flag {flag} expects a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")?.clone()),
            "--samples" => {
                samples = value("--samples")?
                    .parse()
                    .map_err(|e| format!("bad --samples: {e}"))?;
            }
            "--warmup" => {
                warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}\n{USAGE}")),
        }
    }
    if samples == 0 {
        return Err("--samples must be positive".to_string());
    }

    let results = profile_all(samples, warmup);

    println!("| kernel | median | samples | batch |");
    println!("|---|---:|---:|---:|");
    for row in &results {
        println!(
            "| {} | {} | {} | {} |",
            row.kernel,
            fmt_ns(row.median_ns),
            row.samples,
            row.batch,
        );
    }

    if let Some(path) = out {
        let mut buf = Vec::new();
        serde_json::to_writer_pretty(&mut buf, &results)
            .map_err(|e| format!("cannot serialise samples: {e}"))?;
        buf.push(b'\n');
        std::fs::write(&path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("kernel samples written to {path}");
    }
    Ok(())
}

/// Runs every kernel workload under the same sampling policy.
fn profile_all(samples: usize, warmup: usize) -> Vec<KernelSample> {
    vec![
        bench_conv2d(samples, warmup),
        bench_dct(samples, warmup),
        bench_gmm_em(samples, warmup),
        bench_diversity(samples, warmup),
        bench_aerial(samples, warmup),
    ]
}

/// Times `work` as `samples` medians-input samples of `batch` iterations
/// each, after `warmup` untimed samples. The accumulator returned by `work`
/// is folded through `black_box` so the optimiser cannot discard the loop.
fn measure(
    kernel: &str,
    samples: usize,
    warmup: usize,
    batch: usize,
    mut work: impl FnMut() -> f32,
) -> KernelSample {
    let mut timings = Vec::with_capacity(samples);
    for round in 0..warmup + samples {
        let start = Instant::now();
        let mut acc = 0.0f32;
        for _ in 0..batch {
            acc += black_box(work());
        }
        let elapsed = start.elapsed();
        black_box(acc);
        if round >= warmup {
            timings.push((elapsed.as_nanos() / batch as u128) as u64);
        }
    }
    KernelSample {
        kernel: kernel.to_string(),
        median_ns: median_ns(timings),
        samples,
        batch,
    }
}

/// Deterministic pseudo-random fill in roughly `[-0.5, 0.5)` (Weyl-style
/// integer hash, no RNG state to keep in sync).
fn det(i: usize) -> f32 {
    ((i.wrapping_mul(2_654_435_761) >> 8) % 1000) as f32 / 1000.0 - 0.5
}

fn det_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<Vec<f32>> = (0..rows)
        .map(|r| (0..cols).map(|c| det(r * cols + c)).collect())
        .collect();
    Matrix::from_rows(&data).expect("deterministic matrix rows are rectangular")
}

/// Conv2d forward pass: 4→8 channels, 3×3 kernel, 16×16 maps, batch of 8.
fn bench_conv2d(samples: usize, warmup: usize) -> KernelSample {
    let mut rng = InitRng::seeded(7, 0.1);
    let conv = Conv2d::new(4, 8, 3, 16, 16, &mut rng);
    let input = det_matrix(8, 4 * 16 * 16);
    measure("conv2d", samples, warmup, 8, || {
        let out = conv.infer(&input);
        out.row(0)[0]
    })
}

/// Forward 8×8 block DCT, the feature-extraction inner loop.
fn bench_dct(samples: usize, warmup: usize) -> KernelSample {
    let dct = Dct2d::new(8);
    let block: Vec<f32> = (0..64).map(det).collect();
    measure("dct", samples, warmup, 512, || dct.transform(&block)[0])
}

/// GMM EM fit: 96 samples × 8 dims, 3 components, a fixed 8 iterations
/// (`tol: 0.0` disables early convergence so every run does the same work).
fn bench_gmm_em(samples: usize, warmup: usize) -> KernelSample {
    let data: Vec<f32> = (0..96 * 8).map(det).collect();
    let config = GmmConfig {
        components: 3,
        max_iters: 8,
        tol: 0.0,
        seed: 5,
        reg_covar: 1e-6,
    };
    measure("gmm_em", samples, warmup, 8, || {
        let model = GaussianMixture::fit(&data, 8, &config).expect("profile GMM config is valid");
        model.weights()[0] as f32
    })
}

/// Diversity scoring over a 96×16 embedding matrix (pairwise cosine pass).
fn bench_diversity(samples: usize, warmup: usize) -> KernelSample {
    let embeddings = det_matrix(96, 16);
    measure("diversity", samples, warmup, 32, || {
        diversity_scores(&embeddings)[0]
    })
}

/// Separable aerial-image convolution: σ = 1.5 px PSF over a 64×64 clip.
fn bench_aerial(samples: usize, warmup: usize) -> KernelSample {
    let kernel = GaussianKernel::new(1.5);
    let src: Vec<f32> = (0..64 * 64).map(|i| det(i) + 0.5).collect();
    let mut dst = vec![0.0f32; 64 * 64];
    measure("aerial", samples, warmup, 16, || {
        kernel.convolve_2d(&src, &mut dst, 64, 64);
        dst[0]
    })
}

/// Human-readable nanoseconds for the stdout table.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
