//! Fig. 3(b) — runtime of the diversity metric: QP \[14\] vs ours.
//!
//! The paper reports 153.97 vs 8.28 (×10⁻⁴ s) per diversity evaluation. This
//! binary measures both on the same query set: the paper's metric is a
//! single O(n²·d) min-distance pass; the QP baseline must build the n × n
//! similarity matrix *and* run the projected-gradient solve. A Criterion
//! micro-benchmark of the same comparison lives in `benches/diversity.rs`.

use hotspot_active::{diversity_scores, HotspotModel};
use hotspot_baselines::QpSelector;
use hotspot_bench::{try_generate, write_json, ExperimentArgs};
use hotspot_layout::BenchmarkSpec;
use hotspot_nn::Matrix;
use hotspot_qp::QpSolver;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Fig3bResult {
    query_size: usize,
    ours_seconds: f64,
    qp_seconds: f64,
    speedup: f64,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let spec = BenchmarkSpec::iccad16_3().scaled(args.scale.max(0.25));
    let bench = try_generate(&spec, args.seed).expect("benchmark generation succeeds");

    let dct = bench.dct_features();
    let (mean, std) = dct.column_stats();
    let standardized = dct.standardized(&mean, &std);
    let x = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());
    let model = HotspotModel::new(x.cols(), args.seed, 1.0, 1e-3, 32);

    let query: Vec<usize> = (0..bench.len()).take(256).collect();
    let (_, embeddings) = model.predict(&x.gather_rows(&query));
    let uncertainty = vec![0.5f32; query.len()];
    let k = 25;

    // Warm up and measure over repeats.
    let repeats = args.repeats.max(3) as u32;
    let start = Instant::now();
    for _ in 0..repeats {
        let scores = diversity_scores(&embeddings);
        std::hint::black_box(scores);
    }
    let ours = start.elapsed().as_secs_f64() / repeats as f64;

    let selector = QpSelector::new();
    let solver = QpSolver::default();
    let start = Instant::now();
    for _ in 0..repeats {
        let problem = selector
            .build_problem(&embeddings, &uncertainty, k)
            .unwrap();
        let solution = solver.solve(&problem);
        std::hint::black_box(solution);
    }
    let qp = start.elapsed().as_secs_f64() / repeats as f64;

    println!(
        "Fig. 3(b): diversity metric runtime ({} query clips)",
        query.len()
    );
    println!("  QP [14] : {:>10.2} x 1e-4 s", qp * 1e4);
    println!("  Ours    : {:>10.2} x 1e-4 s", ours * 1e4);
    println!("  speedup : {:>10.1}x", qp / ours);
    assert!(
        qp > ours,
        "the min-distance metric must be faster than the QP solve"
    );

    write_json(
        &args.out,
        "fig3b",
        &Fig3bResult {
            query_size: query.len(),
            ours_seconds: ours,
            qp_seconds: qp,
            speedup: qp / ours,
        },
    );
    args.finish_telemetry();
}
