//! Fig. 4 — trade-off of different batch-selection strategies.
//!
//! For each benchmark and each strategy (Ours, QP, TS), the framework is run
//! over several sampling budgets (iteration counts) and seeds; the runs'
//! `(accuracy, litho)` outcomes are grouped by accuracy level and the litho
//! overhead averaged per level — the paper's scatter of "average lithography
//! simulation overhead at a given detection accuracy". The expected shape:
//! Ours sits lowest, QP needs more litho at matched accuracy, TS is cheap
//! but accuracy-capped.

use hotspot_active::SamplingConfig;
use hotspot_bench::{
    evaluated_specs, run_active_method, try_generate, write_json, ActiveMethod, ExperimentArgs,
    MethodResult,
};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Serialize)]
struct TradeoffPoint {
    benchmark: String,
    method: String,
    accuracy: f64,
    litho: f64,
    runs: usize,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let specs = evaluated_specs(args.scale);
    let methods = [ActiveMethod::Ours, ActiveMethod::Qp, ActiveMethod::Ts];

    let mut points = Vec::new();
    for spec in &specs {
        let bench = try_generate(spec, args.seed).expect("benchmark generation succeeds");
        let base = SamplingConfig::for_benchmark(bench.len());
        println!("Fig. 4 ({}):", spec.name);
        for method in methods {
            // Accuracy level -> litho values observed at that level.
            let mut by_level: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
            let mut raw: Vec<MethodResult> = Vec::new();
            for iterations in [
                base.iterations / 2,
                base.iterations,
                base.iterations * 3 / 2,
            ] {
                let mut config = base.clone();
                config.iterations = iterations.max(1);
                for repeat in 0..args.repeats {
                    let result =
                        run_active_method(method, &bench, &config, args.seed + repeat as u64);
                    // 1% accuracy buckets.
                    let level = (result.accuracy * 100.0).round() as i64;
                    by_level.entry(level).or_default().push(result.litho as f64);
                    raw.push(result);
                }
            }
            println!("  {:<6} accuracy -> mean litho:", method.label());
            for (level, lithos) in &by_level {
                let mean = lithos.iter().sum::<f64>() / lithos.len() as f64;
                println!(
                    "    {:>5.1}%  {:>10.1}  ({} runs)",
                    *level as f64,
                    mean,
                    lithos.len()
                );
                points.push(TradeoffPoint {
                    benchmark: spec.name.clone(),
                    method: method.label().to_owned(),
                    accuracy: *level as f64 / 100.0,
                    litho: mean,
                    runs: lithos.len(),
                });
            }
        }
        println!();
    }
    write_json(&args.out, "fig4", &points);
    args.finish_telemetry();
}
