//! Typed parsing of JSONL run journals (written by `--journal`) plus the
//! regression-gate evaluation used by `lithohd-report gate` and CI.
//!
//! A journal is one JSON object per line, tagged `"type":"event"` or
//! `"type":"snapshot"` (see `hotspot-telemetry`'s `JsonlSink`). This module
//! lifts the ad-hoc line filtering previously duplicated across the
//! integration tests into one parser that tolerates truncated trailing
//! lines (a killed run must still be reportable) and exposes the paper's
//! per-iteration quantities as typed rows.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde_json::Value;

use crate::MethodResult;

/// A parsed journal: raw records plus a count of unreadable lines.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Every line that parsed as a JSON object, in file order.
    pub records: Vec<Value>,
    /// Lines that failed to parse (e.g. a line truncated by `kill -9`);
    /// they are skipped, never fatal.
    pub skipped_lines: usize,
}

/// One `iteration complete` journal event — the Algorithm 2 loop state
/// (temperature → Eq. 4, ω₁/ω₂ → Eq. 13) the paper's figures are built
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Run the iteration belongs to.
    pub run_id: u64,
    /// 1-based iteration number.
    pub iteration: u64,
    /// Fitted softmax temperature `T` (Eq. 4).
    pub temperature: f64,
    /// Expected calibration error on the validation split.
    pub ece: f64,
    /// Clips selected into this iteration's batch.
    pub batch_size: u64,
    /// Hotspots among the batch labels (batch yield).
    pub batch_hotspots: u64,
    /// Labelled-set size after the batch.
    pub labeled_size: u64,
    /// Final training loss of the iteration's update.
    pub train_loss: f64,
    /// Labels that never arrived (faulty oracle giveups).
    pub failed_labels: u64,
    /// Entropy weights `(ω₁, ω₂)` when the selector computes them.
    pub omega: Option<(f64, f64)>,
}

/// One `run complete` journal event: the run's headline quantities
/// (accuracy → Eq. 1, litho → Eq. 2) plus the fault meters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Process-unique run id.
    pub run_id: u64,
    /// Batch-selector name (`entropy`, `ts`, `qp`, `random`).
    pub selector: String,
    /// Detection accuracy in `[0, 1]` (Eq. 1).
    pub accuracy: f64,
    /// Litho-clip overhead (Eq. 2).
    pub litho: u64,
    /// False alarms verified at detection time.
    pub false_alarms: u64,
    /// Validation ECE before temperature scaling.
    pub ece_before: f64,
    /// Validation ECE after temperature scaling.
    pub ece_after: f64,
    /// Whether the run degraded under oracle faults.
    pub degraded: bool,
    /// Labels that never arrived across the run.
    pub label_failures: u64,
    /// Oracle retries absorbed by the backoff policy.
    pub oracle_retries: u64,
    /// Queries abandoned after exhausting retries.
    pub oracle_giveups: u64,
    /// Labels cast as quorum votes.
    pub quorum_votes: u64,
    /// Measured PSHD wall-clock milliseconds.
    pub elapsed_ms: u64,
}

/// One `clip selected` journal event: a clip picked by the selector in one
/// sampling iteration, with the scores it was weighed by. The per-run
/// sequence of these events is the selection map of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRecord {
    /// Run the selection belongs to.
    pub run_id: u64,
    /// 1-based iteration number.
    pub iteration: u64,
    /// Benchmark clip index of the pick.
    pub clip: u64,
    /// 0-based position within the iteration's batch.
    pub rank: u64,
    /// Boundary-weighted entropy score at selection time (Eq. 7).
    pub uncertainty: f64,
    /// Embedding-space diversity score at selection time (Eq. 10).
    pub diversity: f64,
}

/// One `calibration bin` journal event: an occupied reliability-diagram bin
/// at one calibration measurement. Grouping by `(run_id, stage, iteration)`
/// reconstructs the full diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationBinRecord {
    /// Run the measurement belongs to.
    pub run_id: u64,
    /// Measurement stage: `before`, `iteration`, or `after`.
    pub stage: String,
    /// Iteration number for `iteration`-stage measurements; 0 otherwise.
    pub iteration: u64,
    /// 0-based bin index.
    pub bin: u64,
    /// Inclusive lower confidence edge.
    pub lower: f64,
    /// Upper confidence edge.
    pub upper: f64,
    /// Predictions in the bin.
    pub count: u64,
    /// Mean predicted confidence in the bin.
    pub confidence: f64,
    /// Empirical accuracy in the bin.
    pub accuracy: f64,
}

/// One `benchmark ready` journal event: the generated benchmark's spec and
/// seed. Enough to re-synthesize every clip's geometry offline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRecord {
    /// Benchmark name (e.g. `ICCAD12`).
    pub benchmark: String,
    /// Total clips generated.
    pub clips: u64,
    /// Generation seed.
    pub seed: u64,
    /// Technology node identifier (`Tech::name`).
    pub tech: String,
    /// Requested hotspot count.
    pub hotspots: u64,
    /// Requested non-hotspot count.
    pub non_hotspots: u64,
    /// Duplicate-clip rate of the spec.
    pub dup_rate: f64,
    /// Near-miss rate of the spec.
    pub near_miss_rate: f64,
}

/// One `shard worker lost` journal event: a labelling worker that panicked
/// or hung mid-batch, with what the coordinator salvaged from the worker's
/// checkpoint commits and how many clips it had to reassign.
///
/// Canonical journals withhold the `shard.coordinator` target, so this list
/// is empty there by design; provenance (non-canonical) journals keep the
/// full incident log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIncidentRecord {
    /// 1-based labelling-batch ordinal the worker was lost on.
    pub batch: u64,
    /// Shard (worker) index within the batch.
    pub shard: u64,
    /// `true` when the worker panicked; `false` when it hung past the
    /// coordinator's deadline.
    pub dead: bool,
    /// Outcomes recovered from the worker's checkpoint commits.
    pub salvaged: u64,
    /// Clips reassigned to a recovery round.
    pub orphaned: u64,
}

/// Aggregate view of one histogram in a journal snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramStats {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: f64,
    /// Smallest observation, when any.
    pub min: Option<f64>,
    /// Largest observation, when any.
    pub max: Option<f64>,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
}

/// The counters/gauges/histograms of a `"type":"snapshot"` record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotStats {
    /// Counter values by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by dotted name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by dotted name.
    pub histograms: BTreeMap<String, HistogramStats>,
}

fn get_u64(value: &Value, key: &str) -> Option<u64> {
    value.get(key).and_then(Value::as_u64)
}

fn get_f64(value: &Value, key: &str) -> Option<f64> {
    value.get(key).and_then(Value::as_f64)
}

fn get_str<'a>(value: &'a Value, key: &str) -> Option<&'a str> {
    value.get(key).and_then(Value::as_str)
}

impl Journal {
    /// Parses journal text, skipping (and counting) unreadable lines.
    pub fn parse_str(text: &str) -> Journal {
        let mut journal = Journal::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Value>(line) {
                Ok(record) if record.get("type").is_some() => journal.records.push(record),
                _ => journal.skipped_lines += 1,
            }
        }
        journal
    }

    /// Reads and parses a journal file.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be read; unreadable
    /// *lines* are counted in [`Journal::skipped_lines`] instead.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Journal> {
        Ok(Self::parse_str(&std::fs::read_to_string(path)?))
    }

    /// All `"type":"event"` records, in journal order.
    pub fn events(&self) -> impl Iterator<Item = &Value> {
        self.records
            .iter()
            .filter(|r| get_str(r, "type") == Some("event"))
    }

    /// Events with a given `message`, in journal order.
    pub fn events_with_message<'a>(&'a self, message: &'a str) -> impl Iterator<Item = &'a Value> {
        self.events()
            .filter(move |r| get_str(r, "message") == Some(message))
    }

    /// Every `iteration complete` event as a typed row, in journal order.
    pub fn iterations(&self) -> Vec<IterationRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_ITERATION_COMPLETE)
            .filter_map(|event| {
                Some(IterationRecord {
                    run_id: get_u64(event, "run_id")?,
                    iteration: get_u64(event, "iteration")?,
                    temperature: get_f64(event, "temperature")?,
                    ece: get_f64(event, "ece").unwrap_or(f64::NAN),
                    batch_size: get_u64(event, "batch_size").unwrap_or(0),
                    batch_hotspots: get_u64(event, "batch_hotspots").unwrap_or(0),
                    labeled_size: get_u64(event, "labeled_size")?,
                    train_loss: get_f64(event, "train_loss").unwrap_or(f64::NAN),
                    failed_labels: get_u64(event, "failed_labels").unwrap_or(0),
                    omega: match (get_f64(event, "omega1"), get_f64(event, "omega2")) {
                        (Some(w1), Some(w2)) => Some((w1, w2)),
                        _ => None,
                    },
                })
            })
            .collect()
    }

    /// Every `clip selected` event as a typed row, in journal order.
    pub fn selections(&self) -> Vec<SelectionRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_CLIP_SELECTED)
            .filter_map(|event| {
                Some(SelectionRecord {
                    run_id: get_u64(event, "run_id")?,
                    iteration: get_u64(event, "iteration")?,
                    clip: get_u64(event, "clip")?,
                    rank: get_u64(event, "rank").unwrap_or(0),
                    uncertainty: get_f64(event, "uncertainty").unwrap_or(f64::NAN),
                    diversity: get_f64(event, "diversity").unwrap_or(f64::NAN),
                })
            })
            .collect()
    }

    /// Every `calibration bin` event as a typed row, in journal order.
    pub fn calibration_bins(&self) -> Vec<CalibrationBinRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_CALIBRATION_BIN)
            .filter_map(|event| {
                Some(CalibrationBinRecord {
                    run_id: get_u64(event, "run_id")?,
                    stage: get_str(event, "stage")?.to_string(),
                    iteration: get_u64(event, "iteration").unwrap_or(0),
                    bin: get_u64(event, "bin")?,
                    lower: get_f64(event, "lower")?,
                    upper: get_f64(event, "upper")?,
                    count: get_u64(event, "count").unwrap_or(0),
                    confidence: get_f64(event, "confidence").unwrap_or(f64::NAN),
                    accuracy: get_f64(event, "accuracy").unwrap_or(f64::NAN),
                })
            })
            .collect()
    }

    /// Every `benchmark ready` event as a typed row, in journal order.
    /// Events from journals written before the spec fields existed (no
    /// `seed`/`tech`) are skipped — their geometry is not reconstructible.
    pub fn benchmarks(&self) -> Vec<BenchmarkRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_BENCHMARK_READY)
            .filter_map(|event| {
                Some(BenchmarkRecord {
                    benchmark: get_str(event, "benchmark")?.to_string(),
                    clips: get_u64(event, "clips")?,
                    seed: get_u64(event, "seed")?,
                    tech: get_str(event, "tech")?.to_string(),
                    hotspots: get_u64(event, "hotspots")?,
                    non_hotspots: get_u64(event, "non_hotspots")?,
                    dup_rate: get_f64(event, "dup_rate").unwrap_or(0.0),
                    near_miss_rate: get_f64(event, "near_miss_rate").unwrap_or(0.0),
                })
            })
            .collect()
    }

    /// Every `shard worker lost` event as a typed row, in journal order.
    pub fn shard_incidents(&self) -> Vec<ShardIncidentRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_SHARD_WORKER_LOST)
            .filter_map(|event| {
                Some(ShardIncidentRecord {
                    batch: get_u64(event, "batch")?,
                    shard: get_u64(event, "shard")?,
                    dead: event.get("dead").and_then(Value::as_bool).unwrap_or(true),
                    salvaged: get_u64(event, "salvaged").unwrap_or(0),
                    orphaned: get_u64(event, "orphaned").unwrap_or(0),
                })
            })
            .collect()
    }

    /// Every `run complete` event as a typed row, in journal order.
    pub fn runs(&self) -> Vec<RunRecord> {
        self.events_with_message(hotspot_telemetry::names::EVENT_RUN_COMPLETE)
            .filter_map(|event| {
                Some(RunRecord {
                    run_id: get_u64(event, "run_id")?,
                    selector: get_str(event, "selector")?.to_string(),
                    accuracy: get_f64(event, "accuracy")?,
                    litho: get_u64(event, "litho")?,
                    false_alarms: get_u64(event, "false_alarms").unwrap_or(0),
                    ece_before: get_f64(event, "ece_before").unwrap_or(f64::NAN),
                    ece_after: get_f64(event, "ece_after").unwrap_or(f64::NAN),
                    degraded: event
                        .get("degraded")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                    label_failures: get_u64(event, "label_failures").unwrap_or(0),
                    oracle_retries: get_u64(event, "oracle_retries").unwrap_or(0),
                    oracle_giveups: get_u64(event, "oracle_giveups").unwrap_or(0),
                    quorum_votes: get_u64(event, "quorum_votes").unwrap_or(0),
                    elapsed_ms: get_u64(event, "elapsed_ms").unwrap_or(0),
                })
            })
            .collect()
    }

    /// The last `"type":"snapshot"` record, decoded (a journal normally
    /// ends with exactly one).
    pub fn final_snapshot(&self) -> Option<SnapshotStats> {
        let snapshot = self
            .records
            .iter()
            .rev()
            .find(|r| get_str(r, "type") == Some("snapshot"))?;
        let metrics = snapshot.get("metrics")?;
        let mut stats = SnapshotStats::default();
        if let Some(Value::Map(counters)) = metrics.get("counters") {
            for (name, value) in counters {
                if let Some(v) = value.as_u64() {
                    stats.counters.insert(name.clone(), v);
                }
            }
        }
        if let Some(Value::Map(gauges)) = metrics.get("gauges") {
            for (name, value) in gauges {
                if let Some(v) = value.as_f64() {
                    stats.gauges.insert(name.clone(), v);
                }
            }
        }
        if let Some(Value::Map(histograms)) = metrics.get("histograms") {
            for (name, h) in histograms {
                stats.histograms.insert(
                    name.clone(),
                    HistogramStats {
                        count: get_u64(h, "count").unwrap_or(0),
                        sum: get_f64(h, "sum").unwrap_or(0.0),
                        mean: get_f64(h, "mean").unwrap_or(0.0),
                        min: get_f64(h, "min"),
                        max: get_f64(h, "max"),
                        p50: get_f64(h, "p50"),
                        p95: get_f64(h, "p95"),
                        p99: get_f64(h, "p99"),
                    },
                );
            }
        }
        Some(stats)
    }

    /// Every `"type":"resume"` header record — written when a checkpointed
    /// run continues an interrupted journal — as `(iteration, checkpoint)`
    /// pairs in journal order. Canonical journals never contain these.
    pub fn resumes(&self) -> Vec<(u64, u64)> {
        self.records
            .iter()
            .filter(|r| get_str(r, "type") == Some("resume"))
            .filter_map(|r| Some((get_u64(r, "iteration")?, get_u64(r, "checkpoint")?)))
            .collect()
    }

    /// Wall-clock microseconds of every closed span, grouped by span path
    /// (from the `profile` events journals capture at span close).
    pub fn span_durations_us(&self) -> BTreeMap<String, Vec<f64>> {
        let mut spans: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for event in self.events() {
            if get_str(event, "target") != Some("profile") {
                continue;
            }
            if let (Some(path), Some(us)) = (get_str(event, "span"), get_u64(event, "duration_us"))
            {
                spans.entry(path.to_string()).or_default().push(us as f64);
            }
        }
        spans
    }
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`);
/// `None` when the sample is empty.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Table II method label for a journal selector name, when it maps to one
/// of the benchmarked methods.
pub fn method_for_selector(selector: &str) -> Option<&'static str> {
    match selector {
        "entropy" => Some("Ours"),
        "ts" => Some("TS"),
        "qp" => Some("QP"),
        "random" => Some("Random"),
        _ => None,
    }
}

/// Regression tolerances for [`evaluate_gate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTolerances {
    /// Allowed accuracy drop in percentage points (e.g. `0.5`).
    pub accuracy_points: f64,
    /// Allowed Litho# increase in percent of the baseline (e.g. `0` for
    /// "not one extra simulation").
    pub litho_percent: f64,
    /// Allowed wall-time factor over the baseline (e.g. `2.0`); `None`
    /// disables the latency check (CI machines vary).
    pub time_factor: Option<f64>,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            accuracy_points: 0.5,
            litho_percent: 0.0,
            time_factor: None,
        }
    }
}

/// One comparison of the gate: a (method, metric) pair against its bound.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Method label (`Ours`, `TS`, …).
    pub method: String,
    /// Compared metric (`accuracy`, `litho`, `wall_time`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value (averaged over the journal's runs of the method).
    pub measured: f64,
    /// The measured value's pass bound under the tolerances.
    pub bound: f64,
    /// Whether the measurement is within the bound.
    pub ok: bool,
}

/// Result of gating a journal against a committed baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateOutcome {
    /// All performed comparisons.
    pub checks: Vec<GateCheck>,
    /// Structural problems (no runs, no overlapping methods, …); any entry
    /// fails the gate.
    pub errors: Vec<String>,
}

impl GateOutcome {
    /// Whether every check passed and no structural error occurred.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.checks.iter().all(|c| c.ok)
    }
}

/// Gates a journal against a committed baseline: every baseline method
/// must have at least one completed run in the journal (a crashed partial
/// run fails rather than passing on whatever finished), the journal's mean
/// accuracy must not drop more than `accuracy_points` below the baseline,
/// mean Litho# must not exceed the baseline by more than `litho_percent`,
/// and (when enabled) mean wall time must stay under `time_factor` × the
/// baseline.
pub fn evaluate_gate(
    journal: &Journal,
    baseline: &[MethodResult],
    tolerances: &GateTolerances,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let runs = journal.runs();
    if runs.is_empty() {
        outcome
            .errors
            .push("journal contains no `run complete` events".to_string());
        return outcome;
    }

    // Mean (accuracy, litho, elapsed) per mapped method label.
    let mut measured: BTreeMap<&'static str, (f64, f64, f64, usize)> = BTreeMap::new();
    for run in &runs {
        if let Some(method) = method_for_selector(&run.selector) {
            let entry = measured.entry(method).or_insert((0.0, 0.0, 0.0, 0));
            entry.0 += run.accuracy;
            entry.1 += run.litho as f64;
            entry.2 += run.elapsed_ms as f64 / 1000.0;
            entry.3 += 1;
        }
    }

    if baseline.is_empty() {
        outcome.errors.push("baseline is empty".to_string());
    }
    for entry in baseline {
        let Some((acc_sum, litho_sum, secs_sum, n)) = measured.get(entry.method.as_str()) else {
            // A method the baseline covers but the journal lacks is a
            // failure, not a skip: a crashed or partial run must not pass
            // the gate on the methods it happened to finish.
            outcome.errors.push(format!(
                "baseline method {} has no completed run in the journal",
                entry.method
            ));
            continue;
        };
        let n = *n as f64;
        let (accuracy, litho, seconds) = (acc_sum / n, litho_sum / n, secs_sum / n);

        // Sharded baseline rows gate under a distinct label: their accuracy
        // and Litho# equal the base row's by worker-count invariance (so
        // those checks re-assert the invariance at gate level), while their
        // wall-time column is what shard-scaling tracking compares against
        // once `--tolerance-time` is enabled.
        let label = match entry.workers {
            Some(workers) => format!("{}@w{workers}", entry.method),
            None => entry.method.clone(),
        };

        let acc_bound = entry.accuracy - tolerances.accuracy_points / 100.0;
        outcome.checks.push(GateCheck {
            method: label.clone(),
            metric: "accuracy",
            baseline: entry.accuracy,
            measured: accuracy,
            bound: acc_bound,
            ok: accuracy >= acc_bound - 1e-12,
        });

        let litho_bound = entry.litho as f64 * (1.0 + tolerances.litho_percent / 100.0);
        outcome.checks.push(GateCheck {
            method: label.clone(),
            metric: "litho",
            baseline: entry.litho as f64,
            measured: litho,
            bound: litho_bound,
            ok: litho <= litho_bound + 1e-9,
        });

        if let Some(factor) = tolerances.time_factor {
            let time_bound = entry.elapsed.as_secs_f64() * factor;
            outcome.checks.push(GateCheck {
                method: label,
                metric: "wall_time",
                baseline: entry.elapsed.as_secs_f64(),
                measured: seconds,
                bound: time_bound,
                ok: seconds <= time_bound,
            });
        }
    }

    outcome
}

/// Loads a committed baseline (`BENCH_*.json`): a JSON array of
/// [`MethodResult`] entries, as written by the `pshd` seeder binary.
///
/// # Errors
///
/// Returns a human-readable message on I/O or parse failure.
pub fn load_baseline(path: impl AsRef<Path>) -> Result<Vec<MethodResult>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_journal() -> Journal {
        let text = concat!(
            r#"{"type":"event","seq":0,"target":"core.framework","message":"iteration complete","run_id":7,"iteration":1,"temperature":1.5,"ece":0.02,"batch_size":10,"batch_hotspots":3,"labeled_size":50,"train_loss":0.4,"failed_labels":0,"omega1":0.7,"omega2":0.3}"#,
            "\n",
            r#"{"type":"event","seq":1,"target":"profile","message":"nn.train","span":"run/iteration/nn.train","duration_us":1500}"#,
            "\n",
            r#"{"type":"event","seq":2,"target":"core.framework","message":"run complete","run_id":7,"selector":"entropy","accuracy":0.95,"litho":120,"false_alarms":2,"ece_before":0.05,"ece_after":0.01,"degraded":false,"label_failures":0,"oracle_retries":0,"oracle_giveups":0,"quorum_votes":0,"elapsed_ms":2500}"#,
            "\n",
            r#"{"type":"snapshot","seq":3,"metrics":{"counters":{"litho.oracle.calls":120},"gauges":{"calibration.temperature":1.5},"histograms":{"nn.train.loss":{"count":4,"sum":2.0,"mean":0.5,"min":0.25,"max":1.0,"p50":0.5,"p95":0.9,"p99":1.0,"buckets":{"2^-2":4}}}}}"#,
            "\n",
        );
        Journal::parse_str(text)
    }

    #[test]
    fn parses_selection_calibration_and_benchmark_records() {
        let text = concat!(
            r#"{"type":"event","seq":0,"target":"bench.generate","message":"benchmark ready","benchmark":"ICCAD12","clips":100,"seed":42,"tech":"Duv28","hotspots":20,"non_hotspots":80,"dup_rate":0.1,"near_miss_rate":0.2,"elapsed_ms":5}"#,
            "\n",
            r#"{"type":"event","seq":1,"target":"bench.generate","message":"benchmark ready","benchmark":"legacy","clips":10}"#,
            "\n",
            r#"{"type":"event","seq":2,"target":"core.framework","message":"clip selected","run_id":3,"iteration":2,"clip":17,"rank":0,"uncertainty":0.9,"diversity":0.4}"#,
            "\n",
            r#"{"type":"event","seq":3,"target":"core.framework","message":"calibration bin","run_id":3,"stage":"before","iteration":0,"bin":9,"lower":0.9,"upper":1.0,"count":12,"confidence":0.95,"accuracy":0.8}"#,
            "\n",
        );
        let journal = Journal::parse_str(text);

        let benchmarks = journal.benchmarks();
        // The legacy record without spec fields is skipped, not mis-parsed.
        assert_eq!(benchmarks.len(), 1);
        assert_eq!(benchmarks[0].benchmark, "ICCAD12");
        assert_eq!(benchmarks[0].seed, 42);
        assert_eq!(benchmarks[0].tech, "Duv28");
        assert_eq!(benchmarks[0].hotspots, 20);
        assert_eq!(benchmarks[0].non_hotspots, 80);
        assert_eq!(benchmarks[0].dup_rate, 0.1);
        assert_eq!(benchmarks[0].near_miss_rate, 0.2);

        let selections = journal.selections();
        assert_eq!(selections.len(), 1);
        assert_eq!(selections[0].run_id, 3);
        assert_eq!(selections[0].iteration, 2);
        assert_eq!(selections[0].clip, 17);
        assert_eq!(selections[0].rank, 0);
        assert_eq!(selections[0].uncertainty, 0.9);
        assert_eq!(selections[0].diversity, 0.4);

        let bins = journal.calibration_bins();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].stage, "before");
        assert_eq!(bins[0].bin, 9);
        assert_eq!(bins[0].count, 12);
        assert_eq!(bins[0].confidence, 0.95);
        assert_eq!(bins[0].accuracy, 0.8);
    }

    #[test]
    fn parses_iterations_runs_snapshot_and_spans() {
        let journal = sample_journal();
        assert_eq!(journal.skipped_lines, 0);

        let iterations = journal.iterations();
        assert_eq!(iterations.len(), 1);
        assert_eq!(iterations[0].run_id, 7);
        assert_eq!(iterations[0].omega, Some((0.7, 0.3)));
        assert_eq!(iterations[0].labeled_size, 50);

        let runs = journal.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].selector, "entropy");
        assert_eq!(runs[0].litho, 120);
        assert!(!runs[0].degraded);

        let snapshot = journal.final_snapshot().unwrap();
        assert_eq!(snapshot.counters.get("litho.oracle.calls"), Some(&120));
        assert_eq!(snapshot.gauges.get("calibration.temperature"), Some(&1.5));
        let hist = snapshot.histograms.get("nn.train.loss").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.p99, Some(1.0));

        let spans = journal.span_durations_us();
        assert_eq!(spans.get("run/iteration/nn.train").unwrap(), &vec![1500.0]);
    }

    #[test]
    fn resume_records_are_tolerated_and_typed() {
        let text = concat!(
            r#"{"type":"resume","seq":5,"iteration":3,"checkpoint":12}"#,
            "\n",
            r#"{"type":"event","seq":6,"target":"core.framework","message":"run complete","run_id":7,"selector":"entropy","accuracy":0.95,"litho":120,"elapsed_ms":10}"#,
            "\n",
        );
        let journal = Journal::parse_str(text);
        assert_eq!(journal.skipped_lines, 0);
        assert_eq!(journal.resumes(), vec![(3, 12)]);
        // Typed event extraction is unaffected by the interleaved header.
        assert_eq!(journal.runs().len(), 1);
    }

    #[test]
    fn shard_incidents_are_typed_and_keep_journal_order() {
        let text = concat!(
            r#"{"type":"event","seq":0,"target":"shard.coordinator","message":"shard worker lost","batch":2,"shard":1,"dead":true,"salvaged":3,"orphaned":2}"#,
            "\n",
            r#"{"type":"event","seq":1,"target":"shard.coordinator","message":"shard worker lost","batch":5,"shard":0,"dead":false,"salvaged":0,"orphaned":7}"#,
            "\n",
        );
        let journal = Journal::parse_str(text);
        let incidents = journal.shard_incidents();
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].batch, 2);
        assert_eq!(incidents[0].shard, 1);
        assert!(incidents[0].dead);
        assert_eq!(incidents[0].salvaged, 3);
        assert_eq!(incidents[0].orphaned, 2);
        assert!(!incidents[1].dead);
        assert_eq!(incidents[1].orphaned, 7);
        // Canonical journals withhold the coordinator target entirely.
        assert!(sample_journal().shard_incidents().is_empty());
    }

    #[test]
    fn truncated_trailing_line_is_skipped_not_fatal() {
        let mut text = String::new();
        text.push_str(r#"{"type":"event","message":"run complete","run_id":1,"selector":"entropy","accuracy":0.9,"litho":100,"elapsed_ms":10}"#);
        text.push('\n');
        text.push_str(r#"{"type":"snapshot","metrics":{"counters":{"litho.ora"#); // killed mid-write
        let journal = Journal::parse_str(&text);
        assert_eq!(journal.skipped_lines, 1);
        assert_eq!(journal.runs().len(), 1);
        assert!(journal.final_snapshot().is_none());
    }

    #[test]
    fn non_journal_lines_are_counted_as_skipped() {
        let journal = Journal::parse_str("not json\n42\n{\"no_type\":true}\n\n");
        assert_eq!(journal.records.len(), 0);
        assert_eq!(journal.skipped_lines, 3);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 0.5), Some(3.0));
        assert_eq!(percentile(&samples, 0.0), Some(1.0));
        assert_eq!(percentile(&samples, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    fn baseline() -> Vec<MethodResult> {
        vec![MethodResult {
            method: "Ours".to_string(),
            benchmark: "ICCAD12".to_string(),
            accuracy: 0.95,
            litho: 120,
            elapsed: Duration::from_secs(3),
            workers: None,
        }]
    }

    #[test]
    fn gate_passes_on_matching_metrics() {
        let outcome = evaluate_gate(&sample_journal(), &baseline(), &GateTolerances::default());
        assert!(outcome.passed(), "checks: {:?}", outcome.checks);
        assert_eq!(outcome.checks.len(), 2);
    }

    #[test]
    fn gate_fails_on_degraded_accuracy() {
        let mut base = baseline();
        base[0].accuracy = 0.99; // journal's 0.95 is far below tolerance
        let outcome = evaluate_gate(&sample_journal(), &base, &GateTolerances::default());
        assert!(!outcome.passed());
        let acc = outcome
            .checks
            .iter()
            .find(|c| c.metric == "accuracy")
            .unwrap();
        assert!(!acc.ok);
    }

    #[test]
    fn gate_fails_on_litho_regression_at_zero_tolerance() {
        let mut base = baseline();
        base[0].litho = 119; // journal used 120 — one extra simulation
        let outcome = evaluate_gate(&sample_journal(), &base, &GateTolerances::default());
        assert!(!outcome.passed());
        // A 1% tolerance forgives the single extra clip.
        let lax = GateTolerances {
            litho_percent: 1.0,
            ..GateTolerances::default()
        };
        assert!(evaluate_gate(&sample_journal(), &base, &lax).passed());
    }

    #[test]
    fn gate_reports_structural_errors() {
        let empty = Journal::parse_str("");
        let outcome = evaluate_gate(&empty, &baseline(), &GateTolerances::default());
        assert!(!outcome.passed());
        assert!(!outcome.errors.is_empty());

        let mut base = baseline();
        base[0].method = "PM-exact".to_string(); // never journalled by runs
        let outcome = evaluate_gate(&sample_journal(), &base, &GateTolerances::default());
        assert!(!outcome.passed());

        let outcome = evaluate_gate(&sample_journal(), &[], &GateTolerances::default());
        assert!(!outcome.passed(), "an empty baseline gates nothing");
    }

    #[test]
    fn gate_fails_when_a_baseline_method_is_missing_from_the_journal() {
        // The journal only completed the entropy run; a baseline that also
        // covers TS must fail — a crashed partial run is not a pass.
        let mut base = baseline();
        base.push(MethodResult {
            method: "TS".to_string(),
            benchmark: "ICCAD12".to_string(),
            accuracy: 0.9,
            litho: 130,
            elapsed: Duration::from_secs(3),
            workers: None,
        });
        let outcome = evaluate_gate(&sample_journal(), &base, &GateTolerances::default());
        assert!(!outcome.passed());
        assert!(outcome.errors.iter().any(|e| e.contains("TS")));
        // The present method's checks still run and pass.
        assert!(outcome.checks.iter().all(|c| c.ok));
    }

    #[test]
    fn gate_time_check_is_opt_in() {
        let tolerances = GateTolerances {
            time_factor: Some(1.0),
            ..GateTolerances::default()
        };
        // Journal ran in 2.5 s vs 3 s baseline: within 1.0× budget.
        let outcome = evaluate_gate(&sample_journal(), &baseline(), &tolerances);
        assert!(outcome.passed());
        assert!(outcome.checks.iter().any(|c| c.metric == "wall_time"));
    }

    #[test]
    fn worker_rows_gate_against_the_base_method_and_carry_a_distinct_label() {
        // A baseline with shard-scaling rows (`--workers-sweep`) gates an
        // unsharded journal: worker rows match by method name (accuracy and
        // Litho# are worker-count-invariant), and their checks are labelled
        // `Ours@w<N>` so the report distinguishes them from the base row.
        let mut base = baseline();
        base.push(MethodResult {
            method: "Ours".to_string(),
            benchmark: "ICCAD12".to_string(),
            accuracy: 0.95,
            litho: 120,
            elapsed: Duration::from_secs(2),
            workers: Some(4),
        });
        let outcome = evaluate_gate(&sample_journal(), &base, &GateTolerances::default());
        assert!(outcome.passed(), "checks: {:?}", outcome.checks);
        let labels: Vec<&str> = outcome.checks.iter().map(|c| c.method.as_str()).collect();
        assert!(labels.contains(&"Ours"));
        assert!(labels.contains(&"Ours@w4"));

        // With time gating on, the worker row's wall-clock column is the
        // bound the journal is held to.
        let tolerances = GateTolerances {
            time_factor: Some(2.0),
            ..GateTolerances::default()
        };
        let outcome = evaluate_gate(&sample_journal(), &base, &tolerances);
        let timed = outcome
            .checks
            .iter()
            .find(|c| c.method == "Ours@w4" && c.metric == "wall_time")
            .expect("worker row contributes a wall_time check");
        assert_eq!(timed.baseline, 2.0);
        assert_eq!(timed.bound, 4.0);
    }

    #[test]
    fn selector_method_mapping_covers_the_active_methods() {
        assert_eq!(method_for_selector("entropy"), Some("Ours"));
        assert_eq!(method_for_selector("ts"), Some("TS"));
        assert_eq!(method_for_selector("qp"), Some("QP"));
        assert_eq!(method_for_selector("random"), Some("Random"));
        assert_eq!(method_for_selector("pattern"), None);
    }
}
