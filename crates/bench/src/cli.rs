use hotspot_telemetry::{
    self as telemetry, ConsoleSink, EnvFilter, JournalPosition, JsonlSink, MetricsServer,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// The `--metrics-addr` HTTP server for the lifetime of the binary; stashed
/// globally because [`ExperimentArgs`] stays `Clone + PartialEq` while the
/// server handle is neither.
fn metrics_server() -> &'static Mutex<Option<MetricsServer>> {
    static SERVER: OnceLock<Mutex<Option<MetricsServer>>> = OnceLock::new();
    SERVER.get_or_init(|| Mutex::new(None))
}

/// The `--journal` sink for the lifetime of the binary, kept reachable so
/// the checkpoint layer can ask for the journal's durable byte position at
/// save time and write the `resume` header record on restore.
fn journal_slot() -> &'static Mutex<Option<Arc<JsonlSink>>> {
    static JOURNAL: OnceLock<Mutex<Option<Arc<JsonlSink>>>> = OnceLock::new();
    JOURNAL.get_or_init(|| Mutex::new(None))
}

/// The active `--journal` sink, if one is open.
pub(crate) fn journal_sink() -> Option<Arc<JsonlSink>> {
    journal_slot()
        .lock()
        // lithohd-lint: allow(panic-safety) — a poisoned lock is unrecoverable process state
        .expect("journal slot poisoned")
        .clone()
}

/// Command-line arguments shared by every experiment binary.
///
/// Supported flags: `--scale <f64>` (benchmark size factor, default 0.1;
/// 1.0 reproduces Table I cardinalities), `--seed <u64>` (default 1),
/// `--repeats <usize>` (experiments that average over runs, default 3),
/// `--out <dir>` (JSON output directory, default `target/experiments`),
/// `--log <filter>` (console log filter overriding `LITHOHD_LOG`, e.g.
/// `debug` or `info,gmm=trace`), `--journal <path>` (write a JSONL run
/// journal), `--canonical-journal` (withhold all wall-clock data from the
/// journal so identically-seeded runs write byte-identical files),
/// `--metrics-addr <ip:port>` (serve live Prometheus metrics over
/// HTTP for the duration of the run), `--profile` (print the
/// span-timing tree on exit), `--checkpoint-dir <dir>` (persist crash-safe
/// run-state checkpoints), `--checkpoint-every <n>` (iterations between
/// checkpoints, default 1), `--resume` (continue from the newest valid
/// checkpoint instead of starting over),
/// `--crash-after-checkpoints <n>` (kill the process right after the Nth
/// checkpoint commit — the crash injector for resume testing),
/// `--workers <n>` (shard each labelling batch across N oracle worker
/// threads; merged results are byte-identical for every N), and
/// `--kill-shard <i>@<k>` (chaos injection: murder worker `i` on labelling
/// batch `k` of every sharded run — requires `--workers`),
/// `--workers-sweep <n,n,...>` (pshd only: append shard-scaling rows for
/// the paper's method at each listed worker count to the baseline), and
/// `--trace <path>` (record span ids, parent links, and per-shard worker
/// tracks, exported on exit as Chrome-trace JSON loadable in Perfetto).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Benchmark size factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Repetitions for averaged experiments.
    pub repeats: usize,
    /// Output directory for JSON results.
    pub out: PathBuf,
    /// Console log filter (`--log`), overriding the `LITHOHD_LOG` variable.
    pub log: Option<EnvFilter>,
    /// JSONL run-journal path (`--journal`).
    pub journal: Option<PathBuf>,
    /// Whether the journal withholds wall-clock data
    /// (`--canonical-journal`) so equal seeds give byte-identical files.
    pub canonical_journal: bool,
    /// Address to serve live `/metrics` on (`--metrics-addr`), e.g.
    /// `127.0.0.1:9184`; port `0` picks a free port (logged at startup).
    pub metrics_addr: Option<String>,
    /// Whether to print the span-timing profile on exit (`--profile`).
    pub profile: bool,
    /// Checkpoint directory (`--checkpoint-dir`); enables durable run-state
    /// persistence via `hotspot-store`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Save a checkpoint every N framework iterations
    /// (`--checkpoint-every`, default 1 when a checkpoint dir is given).
    pub checkpoint_every: usize,
    /// Resume from the newest valid checkpoint in `--checkpoint-dir`
    /// (`--resume`).
    pub resume: bool,
    /// Kill the process (exit code 3) immediately after the Nth checkpoint
    /// commit (`--crash-after-checkpoints`) — the crash injector the
    /// resume-determinism suite drives.
    pub crash_after_checkpoints: Option<usize>,
    /// Oracle worker threads per labelling batch (`--workers`); `None`
    /// keeps the legacy single-threaded labelling path.
    pub workers: Option<usize>,
    /// Chaos injection `(shard, batch)` from `--kill-shard <i>@<k>`: worker
    /// `i` is murdered on the `k`-th (1-based) labelling batch of every
    /// sharded run. Requires `--workers`.
    pub kill_shard: Option<(usize, usize)>,
    /// Worker counts for the pshd seeder's shard-scaling rows
    /// (`--workers-sweep 1,2,4`); empty disables the sweep.
    pub workers_sweep: Vec<usize>,
    /// Chrome-trace output path (`--trace`): span ids, parent links, and
    /// per-shard worker tracks exported as Perfetto-loadable JSON on exit.
    pub trace: Option<PathBuf>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            scale: 0.1,
            seed: 1,
            repeats: 3,
            out: PathBuf::from("target/experiments"),
            log: None,
            journal: None,
            canonical_journal: false,
            metrics_addr: None,
            profile: false,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            crash_after_checkpoints: None,
            workers: None,
            kill_shard: None,
            workers_sweep: Vec::new(),
            trace: None,
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args` and initialises telemetry sinks, exiting
    /// with a usage message on bad input.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => {
                args.init_telemetry();
                args
            }
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: <bin> [--scale <f64>] [--seed <u64>] [--repeats <usize>] [--out <dir>] \
                     [--log <filter>] [--journal <path>] [--canonical-journal] \
                     [--metrics-addr <ip:port>] [--profile] [--checkpoint-dir <dir>] \
                     [--checkpoint-every <n>] [--resume] [--crash-after-checkpoints <n>] \
                     [--workers <n>] [--kill-shard <i>@<k>] [--workers-sweep <n,n,...>] \
                     [--trace <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or unparsable
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    out.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                    if !(out.scale > 0.0 && out.scale.is_finite()) {
                        return Err("--scale must be positive".to_owned());
                    }
                }
                "--seed" => {
                    out.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--repeats" => {
                    out.repeats = value()?
                        .parse()
                        .map_err(|e| format!("bad --repeats: {e}"))?;
                    if out.repeats == 0 {
                        return Err("--repeats must be positive".to_owned());
                    }
                }
                "--out" => {
                    out.out = PathBuf::from(value()?);
                }
                "--log" => {
                    out.log =
                        Some(EnvFilter::parse(&value()?).map_err(|e| format!("bad --log: {e}"))?);
                }
                "--journal" => {
                    out.journal = Some(PathBuf::from(value()?));
                }
                "--canonical-journal" => {
                    out.canonical_journal = true;
                }
                "--metrics-addr" => {
                    out.metrics_addr = Some(value()?);
                }
                "--profile" => {
                    out.profile = true;
                }
                "--checkpoint-dir" => {
                    out.checkpoint_dir = Some(PathBuf::from(value()?));
                }
                "--checkpoint-every" => {
                    out.checkpoint_every = value()?
                        .parse()
                        .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                    if out.checkpoint_every == 0 {
                        return Err("--checkpoint-every must be positive".to_owned());
                    }
                }
                "--resume" => {
                    out.resume = true;
                }
                "--crash-after-checkpoints" => {
                    out.crash_after_checkpoints = Some(
                        value()?
                            .parse()
                            .map_err(|e| format!("bad --crash-after-checkpoints: {e}"))?,
                    );
                }
                "--workers" => {
                    out.workers = Some(
                        value()?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?,
                    );
                    if out.workers == Some(0) {
                        return Err("--workers must be positive".to_owned());
                    }
                }
                "--kill-shard" => {
                    out.kill_shard = Some(parse_kill_shard(&value()?)?);
                }
                "--trace" => {
                    out.trace = Some(PathBuf::from(value()?));
                }
                "--workers-sweep" => {
                    out.workers_sweep = value()?
                        .split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<usize>()
                                .map_err(|e| format!("bad --workers-sweep entry {part:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if out.workers_sweep.is_empty() || out.workers_sweep.contains(&0) {
                        return Err(
                            "--workers-sweep expects positive counts like `1,2,4`".to_owned()
                        );
                    }
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if out.checkpoint_dir.is_none() && (out.resume || out.crash_after_checkpoints.is_some()) {
            return Err(
                "--resume and --crash-after-checkpoints require --checkpoint-dir".to_owned(),
            );
        }
        if out.workers.is_none() && out.kill_shard.is_some() {
            return Err("--kill-shard requires --workers".to_owned());
        }
        if let (Some(workers), Some((shard, _))) = (out.workers, out.kill_shard) {
            if shard >= workers {
                return Err(format!(
                    "--kill-shard names worker {shard}, but --workers is {workers}"
                ));
            }
        }
        Ok(out)
    }

    /// The kill-shard chaos spec as a batch-ordinal panic injection, when
    /// both `--workers` and `--kill-shard` were given.
    pub fn kill_spec(&self) -> Option<hotspot_shard::KillSpec> {
        self.kill_shard
            .map(|(shard, batch)| hotspot_shard::KillSpec {
                shard,
                batch,
                mode: hotspot_shard::FailureMode::Panic,
            })
    }

    /// Registers the telemetry sinks these arguments ask for: a console
    /// sink (filtered by `--log`, else `LITHOHD_LOG`), a JSONL journal when
    /// `--journal` was given, and a live `/metrics` HTTP server when
    /// `--metrics-addr` was given.
    pub fn init_telemetry(&self) {
        let filter = self.log.clone().unwrap_or_else(EnvFilter::from_env);
        telemetry::add_sink(Arc::new(ConsoleSink::new(filter)));
        if self.trace.is_some() {
            telemetry::trace::enable();
        }
        if self.journal.is_some() && !self.resume {
            // A resuming process defers the journal: it must first restore
            // the checkpoint (events before its saved journal position
            // already survive in the file), regenerate the benchmark
            // without double-journalling those events, truncate, and only
            // then start appending — see `open_journal_resumed`.
            self.open_journal(false, None);
        }
        if let Some(addr) = &self.metrics_addr {
            match telemetry::serve_metrics(addr) {
                Ok(server) => {
                    eprintln!("serving metrics on http://{}/metrics", server.local_addr());
                    // lithohd-lint: allow(panic-safety) — a poisoned lock is unrecoverable process state
                    *metrics_server().lock().expect("metrics server poisoned") = Some(server);
                }
                Err(e) => {
                    eprintln!("cannot serve metrics on {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    /// Opens the `--journal` sink for a resumed run: the file is truncated
    /// back to the checkpoint's durable [`JournalPosition`] (records the
    /// crashed process wrote after its last save must not survive twice —
    /// the resumed run re-emits them), then opened in append mode so the
    /// continuation extends the surviving prefix. No-op without
    /// `--journal`.
    pub fn open_journal_resumed(&self, position: Option<JournalPosition>) {
        if self.journal.is_some() {
            self.open_journal(true, position);
        }
    }

    fn open_journal(&self, append: bool, truncate_to: Option<JournalPosition>) {
        // lithohd-lint: allow(panic-safety) — `open_journal` is only called with `journal` set
        let path = self.journal.as_ref().expect("journal path present");
        if let Some(position) = truncate_to {
            if let Ok(file) = std::fs::File::options().write(true).open(path) {
                if let Err(e) = file.set_len(position.bytes) {
                    eprintln!("cannot truncate journal {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        let sink = match (self.canonical_journal, append) {
            (true, true) => JsonlSink::create_canonical_append(path),
            (true, false) => JsonlSink::create_canonical(path),
            (false, true) => JsonlSink::append(path),
            (false, false) => JsonlSink::create(path),
        };
        match sink {
            Ok(sink) => {
                let sink = Arc::new(sink);
                // lithohd-lint: allow(panic-safety) — a poisoned lock is unrecoverable process state
                *journal_slot().lock().expect("journal slot poisoned") = Some(Arc::clone(&sink));
                telemetry::add_sink(sink);
            }
            Err(e) => {
                eprintln!("cannot open journal {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    /// Finalises telemetry at the end of a binary: publishes the metrics
    /// snapshot to every sink (the journal's closing record), prints the
    /// span-timing tree when `--profile` was given, and shuts down the
    /// `--metrics-addr` server.
    pub fn finish_telemetry(&self) {
        telemetry::publish_snapshot();
        if self.profile {
            eprint!("{}", telemetry::profile_report());
        }
        if let Some(path) = &self.trace {
            match std::fs::write(path, telemetry::trace::export_chrome_trace()) {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => eprintln!("cannot write trace {}: {e}", path.display()),
            }
        }
        telemetry::flush();
        if let Some(mut server) = metrics_server()
            .lock()
            // lithohd-lint: allow(panic-safety) — a poisoned lock is unrecoverable process state
            .expect("metrics server poisoned")
            .take()
        {
            server.shutdown();
        }
    }
}

/// Parses a `--kill-shard` value of the form `<shard>@<batch>` (the batch
/// ordinal is 1-based).
fn parse_kill_shard(value: &str) -> Result<(usize, usize), String> {
    let (shard, batch) = value
        .split_once('@')
        .ok_or_else(|| format!("bad --kill-shard {value:?}: expected <shard>@<batch>"))?;
    let shard: usize = shard
        .parse()
        .map_err(|e| format!("bad --kill-shard shard: {e}"))?;
    let batch: usize = batch
        .parse()
        .map_err(|e| format!("bad --kill-shard batch: {e}"))?;
    if batch == 0 {
        return Err("--kill-shard batch ordinal is 1-based".to_owned());
    }
    Ok((shard, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_telemetry::Level;

    fn parse(args: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, ExperimentArgs::default());
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--repeats",
            "7",
            "--out",
            "/tmp/x",
            "--log",
            "debug",
            "--journal",
            "/tmp/run.jsonl",
            "--canonical-journal",
            "--metrics-addr",
            "127.0.0.1:0",
            "--profile",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--checkpoint-every",
            "2",
            "--resume",
            "--crash-after-checkpoints",
            "4",
            "--trace",
            "/tmp/trace.json",
        ])
        .unwrap();
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.seed, 9);
        assert_eq!(args.repeats, 7);
        assert_eq!(args.out, PathBuf::from("/tmp/x"));
        assert_eq!(args.log, Some(EnvFilter::at(Level::Debug)));
        assert_eq!(args.journal, Some(PathBuf::from("/tmp/run.jsonl")));
        assert!(args.canonical_journal);
        assert_eq!(args.metrics_addr, Some("127.0.0.1:0".to_string()));
        assert!(args.profile);
        assert_eq!(args.checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
        assert_eq!(args.checkpoint_every, 2);
        assert!(args.resume);
        assert_eq!(args.crash_after_checkpoints, Some(4));
        assert_eq!(args.trace, Some(PathBuf::from("/tmp/trace.json")));
    }

    #[test]
    fn trace_flag_needs_a_path() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&[]).unwrap().trace.is_none());
    }

    #[test]
    fn log_accepts_directives() {
        let args = parse(&["--log", "warn,gmm=trace"]).unwrap();
        let filter = args.log.unwrap();
        assert!(filter.enabled(Level::Trace, "gmm.em"));
        assert!(!filter.enabled(Level::Info, "core.framework"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--repeats", "0"]).is_err());
        assert!(parse(&["--log", "loud"]).is_err());
        assert!(parse(&["--journal"]).is_err());
        assert!(parse(&["--metrics-addr"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--checkpoint-every", "0"]).is_err());
        assert!(parse(&["--resume"]).is_err(), "--resume needs a dir");
        assert!(parse(&["--crash-after-checkpoints", "1"]).is_err());
    }

    #[test]
    fn shard_flags_parse_and_validate() {
        let args = parse(&["--workers", "4"]).unwrap();
        assert_eq!(args.workers, Some(4));
        assert_eq!(args.kill_shard, None);
        assert!(args.kill_spec().is_none());

        let args = parse(&["--workers", "4", "--kill-shard", "1@3"]).unwrap();
        assert_eq!(args.kill_shard, Some((1, 3)));
        let spec = args.kill_spec().unwrap();
        assert_eq!(spec.shard, 1);
        assert_eq!(spec.batch, 3);
        assert_eq!(spec.mode, hotspot_shard::FailureMode::Panic);

        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--kill-shard", "1@3"]).is_err(), "needs --workers");
        assert!(parse(&["--workers", "2", "--kill-shard", "2@3"]).is_err());
        assert!(parse(&["--workers", "2", "--kill-shard", "1@0"]).is_err());
        assert!(parse(&["--workers", "2", "--kill-shard", "1-3"]).is_err());
    }

    #[test]
    fn workers_sweep_parses_and_validates() {
        assert!(parse(&[]).unwrap().workers_sweep.is_empty());

        let args = parse(&["--workers-sweep", "1,2,4"]).unwrap();
        assert_eq!(args.workers_sweep, vec![1, 2, 4]);

        let args = parse(&["--workers-sweep", " 2 , 8 "]).unwrap();
        assert_eq!(args.workers_sweep, vec![2, 8]);

        assert!(parse(&["--workers-sweep", ""]).is_err());
        assert!(parse(&["--workers-sweep", "1,0"]).is_err());
        assert!(parse(&["--workers-sweep", "1,x"]).is_err());
    }
}
