use std::path::PathBuf;

/// Command-line arguments shared by every experiment binary.
///
/// Supported flags: `--scale <f64>` (benchmark size factor, default 0.1;
/// 1.0 reproduces Table I cardinalities), `--seed <u64>` (default 1),
/// `--repeats <usize>` (experiments that average over runs, default 3), and
/// `--out <dir>` (JSON output directory, default `target/experiments`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Benchmark size factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Repetitions for averaged experiments.
    pub repeats: usize,
    /// Output directory for JSON results.
    pub out: PathBuf,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            scale: 0.1,
            seed: 1,
            repeats: 3,
            out: PathBuf::from("target/experiments"),
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args`, exiting with a usage message on bad input.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: <bin> [--scale <f64>] [--seed <u64>] [--repeats <usize>] [--out <dir>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument iterator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or unparsable
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .ok_or_else(|| format!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    out.scale = value()?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                    if !(out.scale > 0.0 && out.scale.is_finite()) {
                        return Err("--scale must be positive".to_owned());
                    }
                }
                "--seed" => {
                    out.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--repeats" => {
                    out.repeats = value()?
                        .parse()
                        .map_err(|e| format!("bad --repeats: {e}"))?;
                    if out.repeats == 0 {
                        return Err("--repeats must be positive".to_owned());
                    }
                }
                "--out" => {
                    out.out = PathBuf::from(value()?);
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, ExperimentArgs::default());
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&["--scale", "0.5", "--seed", "9", "--repeats", "7", "--out", "/tmp/x"]).unwrap();
        assert_eq!(args.scale, 0.5);
        assert_eq!(args.seed, 9);
        assert_eq!(args.repeats, 7);
        assert_eq!(args.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--repeats", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
