/// Projects row-major `data` (`n × dim`) onto its top two principal
/// components, for the Fig. 3(a) diversity scatter.
///
/// Components are found by power iteration on the centred covariance with
/// deflation — adequate for visualisation and free of linear-algebra
/// dependencies. Returns `n` `(x, y)` pairs.
///
/// # Panics
///
/// Panics when `data.len()` is not a multiple of `dim` or `dim == 0`.
pub fn project_2d(data: &[f32], dim: usize) -> Vec<(f32, f32)> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "data is not a whole number of rows");
    let n = data.len() / dim;
    if n == 0 {
        return Vec::new();
    }
    // Centre.
    let mut mean = vec![0.0f64; dim];
    for row in data.chunks_exact(dim) {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<f64> = data
        .chunks_exact(dim)
        .flat_map(|row| {
            row.iter()
                .zip(&mean)
                .map(|(&v, &m)| v as f64 - m)
                .collect::<Vec<_>>()
        })
        .collect();

    let pc1 = power_iteration(&centered, n, dim, None);
    let pc2 = power_iteration(&centered, n, dim, Some(&pc1));

    centered
        .chunks_exact(dim)
        .map(|row| {
            let x: f64 = row.iter().zip(&pc1).map(|(&v, &c)| v * c).sum();
            let y: f64 = row.iter().zip(&pc2).map(|(&v, &c)| v * c).sum();
            (x as f32, y as f32)
        })
        .collect()
}

/// Power iteration for the leading eigenvector of `XᵀX`, optionally deflated
/// against a previous component.
fn power_iteration(centered: &[f64], n: usize, dim: usize, deflate: Option<&[f64]>) -> Vec<f64> {
    // Deterministic, non-degenerate start.
    let mut v: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64) * 0.37).collect();
    normalize(&mut v);
    for _ in 0..60 {
        if let Some(prev) = deflate {
            orthogonalize(&mut v, prev);
        }
        // w = Xᵀ (X v)
        let mut w = vec![0.0f64; dim];
        for row in centered.chunks_exact(dim) {
            let proj: f64 = row.iter().zip(&v).map(|(&a, &b)| a * b).sum();
            for (wi, &ri) in w.iter_mut().zip(row) {
                *wi += proj * ri;
            }
        }
        if let Some(prev) = deflate {
            orthogonalize(&mut w, prev);
        }
        if w.iter().all(|&x| x.abs() < 1e-18) {
            break; // degenerate data (e.g. single repeated row)
        }
        normalize(&mut w);
        v = w;
    }
    let _ = n;
    v
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-18 {
        for x in v {
            *x /= norm;
        }
    }
}

fn orthogonalize(v: &mut [f64], against: &[f64]) {
    let dot: f64 = v.iter().zip(against).map(|(&a, &b)| a * b).sum();
    for (vi, &ai) in v.iter_mut().zip(against) {
        *vi -= dot * ai;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_to_pairs() {
        let data: Vec<f32> = (0..30).map(|i| (i % 7) as f32).collect();
        let p = project_2d(&data, 3);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn captures_dominant_direction() {
        // Points along the x-axis in 3-D: PC1 projection must recover their
        // spread, PC2 nothing.
        let mut data = Vec::new();
        for i in 0..20 {
            data.extend_from_slice(&[i as f32, 0.0, 0.0]);
        }
        let p = project_2d(&data, 3);
        let spread_x: f32 = p.iter().map(|&(x, _)| x.abs()).sum();
        let spread_y: f32 = p.iter().map(|&(_, y)| y.abs()).sum();
        assert!(
            spread_x > 10.0 * (spread_y + 1e-6),
            "x {spread_x} y {spread_y}"
        );
    }

    #[test]
    fn components_are_orthogonal_for_planar_data() {
        // Points spread in two directions; projections should be finite and
        // distinct.
        let mut data = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                data.extend_from_slice(&[i as f32, j as f32 * 2.0, 0.5]);
            }
        }
        let p = project_2d(&data, 3);
        assert!(p.iter().all(|&(x, y)| x.is_finite() && y.is_finite()));
        let var_x: f32 = p.iter().map(|&(x, _)| x * x).sum();
        let var_y: f32 = p.iter().map(|&(_, y)| y * y).sum();
        assert!(var_x > 0.0 && var_y > 0.0);
    }

    #[test]
    fn degenerate_data_does_not_crash() {
        let data = vec![1.0f32; 12];
        let p = project_2d(&data, 4);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&(x, y)| x.abs() < 1e-6 && y.abs() < 1e-6));
    }

    #[test]
    fn empty_input() {
        assert!(project_2d(&[], 5).is_empty());
    }
}
