use std::time::Duration;

/// The paper's per-litho-clip time penalty (Section IV-C): each simulated
/// clip is charged 10 seconds, the dominant cost of a real verification
/// flow.
pub const LITHO_SECONDS_PER_CLIP: f64 = 10.0;

/// The Fig. 6(b) end-to-end runtime model: litho-clip count × 10 s plus the
/// measured PSHD computation time.
pub fn runtime_seconds(litho_clips: usize, pshd_elapsed: Duration) -> f64 {
    litho_clips as f64 * LITHO_SECONDS_PER_CLIP + pshd_elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litho_dominates() {
        let total = runtime_seconds(1000, Duration::from_secs(30));
        assert!((total - 10_030.0).abs() < 1e-9);
    }

    #[test]
    fn zero_litho_is_pure_compute() {
        assert!((runtime_seconds(0, Duration::from_millis(1500)) - 1.5).abs() < 1e-9);
    }
}
