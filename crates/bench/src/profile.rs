//! Per-kernel microbenchmark samples and their wall-clock regression gate.
//!
//! The `lithohd-profile` binary times the five ROADMAP-item-1 hot kernels
//! (conv2d, block DCT, GMM EM, diversity, aerial convolution) with a fixed
//! warmup and a median over repeated batched samples, then writes the
//! measurements as a JSON array of [`KernelSample`]s. A committed copy
//! (`BENCH_kernels.json`) is the baseline that `lithohd-report gate
//! --tolerance-time` compares fresh runs against, so a kernel that silently
//! gets slower fails CI the same way an accuracy regression does.
//!
//! This module holds only the clock-free half: the sample record, baseline
//! loading, shape detection, and the gate evaluation (reusing the journal's
//! [`GateCheck`]/[`GateOutcome`] machinery). All `Instant` use stays in the
//! binary.

use crate::journal::{GateCheck, GateOutcome};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One kernel's microbench measurement.
///
/// `median_ns` is the per-iteration wall time: each timed sample executes
/// `batch` back-to-back iterations (amortising timer overhead, the batched
/// idiom), divides by `batch`, and the median over `samples` such repeats is
/// recorded. The median makes single scheduler hiccups invisible, which is
/// what lets a CI gate use these numbers at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSample {
    /// Kernel label: `conv2d`, `dct`, `gmm_em`, `diversity`, or `aerial`.
    pub kernel: String,
    /// Median per-iteration wall time in nanoseconds.
    pub median_ns: u64,
    /// Number of timed samples the median was taken over.
    pub samples: usize,
    /// Iterations folded into each timed sample.
    pub batch: usize,
}

/// Median of raw per-iteration timings, in nanoseconds.
///
/// Even-length inputs take the lower middle (a real measurement rather than
/// an average of two), and an empty input yields zero.
pub fn median_ns(mut timings: Vec<u64>) -> u64 {
    if timings.is_empty() {
        return 0;
    }
    timings.sort_unstable();
    timings[(timings.len() - 1) / 2]
}

/// Loads a committed kernel baseline (a JSON array of [`KernelSample`]s).
///
/// # Errors
///
/// Returns a human-readable message when the file cannot be read or parsed.
pub fn load_kernel_baseline(path: impl AsRef<Path>) -> Result<Vec<KernelSample>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read kernel baseline {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse kernel baseline {}: {e}", path.display()))
}

/// Whether a baseline file holds kernel samples rather than method results.
///
/// `lithohd-report gate` accepts both baseline shapes and dispatches on the
/// content: a kernel baseline is a JSON array whose first object carries a
/// `kernel` key, which no [`crate::methods::MethodResult`] row has.
pub fn looks_like_kernel_baseline(text: &str) -> bool {
    let Ok(value) = serde_json::from_str::<serde_json::Value>(text) else {
        return false;
    };
    value
        .as_array()
        .and_then(|rows| rows.first())
        .is_some_and(|row| row.get("kernel").is_some())
}

/// Gates fresh kernel measurements against a committed baseline.
///
/// Every baseline kernel must appear in `measured` (a missing kernel is a
/// structural error, not a pass), and its median must stay at or under
/// `time_factor` × the baseline median. Kernels measured but absent from the
/// baseline are ignored — a new kernel lands by regenerating the baseline.
pub fn evaluate_kernel_gate(
    measured: &[KernelSample],
    baseline: &[KernelSample],
    time_factor: f64,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    if baseline.is_empty() {
        outcome.errors.push("kernel baseline is empty".to_string());
        return outcome;
    }
    if !(time_factor.is_finite() && time_factor > 0.0) {
        outcome
            .errors
            .push(format!("time factor must be positive, got {time_factor}"));
        return outcome;
    }
    for entry in baseline {
        let Some(fresh) = measured.iter().find(|s| s.kernel == entry.kernel) else {
            outcome
                .errors
                .push(format!("kernel `{}` was not measured", entry.kernel));
            continue;
        };
        let bound = entry.median_ns as f64 * time_factor;
        outcome.checks.push(GateCheck {
            method: entry.kernel.clone(),
            metric: "kernel_ns",
            baseline: entry.median_ns as f64,
            measured: fresh.median_ns as f64,
            bound,
            ok: fresh.median_ns as f64 <= bound,
        });
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kernel: &str, median_ns: u64) -> KernelSample {
        KernelSample {
            kernel: kernel.to_string(),
            median_ns,
            samples: 9,
            batch: 32,
        }
    }

    #[test]
    fn median_takes_the_middle_sample() {
        assert_eq!(median_ns(vec![5, 1, 9]), 5);
        assert_eq!(median_ns(vec![4, 2, 8, 6]), 4); // lower middle
        assert_eq!(median_ns(vec![7]), 7);
        assert_eq!(median_ns(vec![]), 0);
    }

    #[test]
    fn samples_roundtrip_through_json() {
        let rows = vec![sample("dct", 1200), sample("aerial", 88_000)];
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, &rows).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back: Vec<KernelSample> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rows);
        assert!(looks_like_kernel_baseline(&text));
    }

    #[test]
    fn method_baselines_are_not_kernel_baselines() {
        let pshd = r#"[{"method":"Ours","benchmark":"iccad-2012","accuracy":0.97,
                        "litho":312.0,"elapsed":4.2}]"#;
        assert!(!looks_like_kernel_baseline(pshd));
        assert!(!looks_like_kernel_baseline("not json"));
        assert!(!looks_like_kernel_baseline("[]"));
        assert!(!looks_like_kernel_baseline("{\"kernel\":\"dct\"}"));
    }

    #[test]
    fn gate_passes_within_the_factor_and_fails_beyond_it() {
        let baseline = vec![sample("dct", 1000), sample("conv2d", 4000)];
        let ok = evaluate_kernel_gate(
            &[sample("dct", 2900), sample("conv2d", 4000)],
            &baseline,
            3.0,
        );
        assert!(ok.passed(), "{:?}", ok.checks);
        assert_eq!(ok.checks.len(), 2);
        assert!(ok.checks.iter().all(|c| c.metric == "kernel_ns"));

        let slow = evaluate_kernel_gate(
            &[sample("dct", 3001), sample("conv2d", 4000)],
            &baseline,
            3.0,
        );
        assert!(!slow.passed());
        let failed: Vec<_> = slow.checks.iter().filter(|c| !c.ok).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].method, "dct");
        assert_eq!(failed[0].bound, 3000.0);
    }

    #[test]
    fn missing_kernels_fail_structurally() {
        let outcome = evaluate_kernel_gate(
            &[sample("dct", 500)],
            &[sample("dct", 1000), sample("gmm_em", 2000)],
            2.0,
        );
        assert!(!outcome.passed());
        assert!(outcome.errors.iter().any(|e| e.contains("gmm_em")));
        assert_eq!(outcome.checks.len(), 1); // the present kernel still checked
    }

    #[test]
    fn degenerate_inputs_are_structural_errors() {
        assert!(!evaluate_kernel_gate(&[], &[], 2.0).passed());
        let baseline = vec![sample("dct", 1000)];
        assert!(!evaluate_kernel_gate(&baseline, &baseline, 0.0).passed());
        assert!(!evaluate_kernel_gate(&baseline, &baseline, f64::NAN).passed());
    }
}
