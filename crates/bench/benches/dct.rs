//! Feature-extraction micro-benchmarks: block DCT and run-length histograms
//! over a realistic clip raster.

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_features::{run_length_histogram, FeatureExtractor, DEFAULT_RUN_BINS};
use hotspot_geom::{Raster, Rect};

fn clip_raster() -> Raster {
    let mut raster = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), 10).unwrap();
    for i in 0..8 {
        let y = 40 + i * 150;
        raster.fill_rect(&Rect::new(0, y, 1200, y + 80).unwrap(), 1.0);
    }
    raster
}

fn bench_features(c: &mut Criterion) {
    let raster = clip_raster();
    let extractor = FeatureExtractor::standard();
    c.bench_function("dct_extract_standard", |b| {
        b.iter(|| extractor.extract(std::hint::black_box(&raster)));
    });
    c.bench_function("density_features", |b| {
        b.iter(|| extractor.density_features(std::hint::black_box(&raster)));
    });
    c.bench_function("run_length_histogram", |b| {
        b.iter(|| run_length_histogram(std::hint::black_box(&raster), 0.5, &DEFAULT_RUN_BINS));
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
