//! Lithography-simulator micro-benchmarks: aerial image convolution and the
//! full clip analysis (the per-clip cost that makes litho labelling the
//! expensive oracle of the problem).

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_geom::{Raster, Rect};
use hotspot_litho::{LithoConfig, LithoSimulator};

fn clip_raster(config: &LithoConfig) -> Raster {
    let mut raster = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), config.pitch).unwrap();
    for i in 0..7 {
        let y = 60 + i * 160;
        raster.fill_rect(&Rect::new(0, y, 1200, y + 80).unwrap(), 1.0);
    }
    raster
}

fn bench_litho(c: &mut Criterion) {
    let config = LithoConfig::duv_28nm();
    let sim = LithoSimulator::new(config.clone());
    let raster = clip_raster(&config);
    let core = Rect::new(300, 300, 900, 900).unwrap();

    c.bench_function("aerial_image", |b| {
        b.iter(|| sim.aerial_image(std::hint::black_box(&raster)));
    });
    c.bench_function("full_clip_analysis", |b| {
        b.iter(|| sim.analyze(std::hint::black_box(&raster), core));
    });
}

criterion_group!(benches, bench_litho);
criterion_main!(benches);
