//! End-to-end batch-selection micro-benchmark: Algorithm 1 (entropy
//! sampling) against the TS and QP selectors on the same query set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_active::{
    AblationConfig, BatchSelector, EntropySelector, SelectionContext, UncertaintySelector,
    WeightMode,
};
use hotspot_baselines::QpSelector;
use hotspot_nn::{InitRng, Matrix};

fn query(n: usize) -> (Matrix, Vec<f32>, Matrix) {
    let mut rng = InitRng::seeded(11, 1.0);
    let mut logits = vec![0.0f32; n * 2];
    rng.fill(&mut logits);
    let logits = Matrix::from_flat(n, 2, logits);
    let probabilities: Vec<f32> = logits
        .as_slice()
        .chunks_exact(2)
        .flat_map(|row| {
            let m = row[0].max(row[1]);
            let e0 = (row[0] - m).exp();
            let e1 = (row[1] - m).exp();
            [e0 / (e0 + e1), e1 / (e0 + e1)]
        })
        .collect();
    let mut embeddings = vec![0.0f32; n * 32];
    rng.fill(&mut embeddings);
    (logits, probabilities, Matrix::from_flat(n, 32, embeddings))
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_selection");
    for &n in &[128usize, 256] {
        let (logits, probabilities, embeddings) = query(n);
        let make_ctx = || SelectionContext {
            logits: &logits,
            probabilities: &probabilities,
            embeddings: &embeddings,
            k: 25,
            boundary_h: 0.4,
            weight_mode: WeightMode::Entropy,
            ablation: AblationConfig::default(),
            rng_seed: 0,
        };
        group.bench_with_input(BenchmarkId::new("entropy", n), &n, |b, _| {
            let mut selector = EntropySelector::new();
            b.iter(|| selector.select(&make_ctx()));
        });
        group.bench_with_input(BenchmarkId::new("ts", n), &n, |b, _| {
            let mut selector = UncertaintySelector::new();
            b.iter(|| selector.select(&make_ctx()));
        });
        group.bench_with_input(BenchmarkId::new("qp", n), &n, |b, _| {
            let mut selector = QpSelector::new();
            b.iter(|| selector.select(&make_ctx()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
