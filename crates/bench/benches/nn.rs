//! Classifier micro-benchmarks: forward inference (the per-iteration query
//! cost) and a full training step of the hotspot MLP.

use criterion::{criterion_group, criterion_main, Criterion};
use hotspot_nn::{Adam, Dense, InitRng, Matrix, Relu, Sequential, SoftmaxCrossEntropy};

fn model(input_dim: usize) -> Sequential {
    let mut rng = InitRng::seeded(3, 1.0);
    let mut net = Sequential::new();
    net.push(Dense::new(input_dim, 64, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(64, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, 2, &mut rng));
    net
}

fn batch(rows: usize, dim: usize) -> Matrix {
    let mut rng = InitRng::seeded(5, 0.5);
    let mut data = vec![0.0f32; rows * dim];
    rng.fill(&mut data);
    Matrix::from_flat(rows, dim, data)
}

fn bench_nn(c: &mut Criterion) {
    let dim = 148;
    let net = model(dim);
    let pool = batch(1024, dim);
    c.bench_function("infer_1024_clips", |b| {
        b.iter(|| net.infer(std::hint::black_box(&pool)));
    });
    c.bench_function("infer_with_embedding_1024", |b| {
        b.iter(|| net.infer_with_embedding(std::hint::black_box(&pool)));
    });

    let x = batch(64, dim);
    let labels: Vec<usize> = (0..64).map(|i| i % 2).collect();
    let loss = SoftmaxCrossEntropy::balanced(2);
    c.bench_function("train_batch_64", |b| {
        let mut train_net = model(dim);
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            train_net
                .train_batch(&x, &labels, &loss, &mut opt)
                .expect("train step")
        });
    });
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
