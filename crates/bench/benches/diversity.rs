//! Criterion micro-benchmark behind Fig. 3(b): the paper's min-distance
//! diversity metric against the QP formulation of [14], at several query-set
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_active::diversity_scores;
use hotspot_baselines::QpSelector;
use hotspot_nn::{InitRng, Matrix};
use hotspot_qp::QpSolver;

fn embeddings(n: usize, dim: usize) -> Matrix {
    let mut rng = InitRng::seeded(7, 1.0);
    let mut data = vec![0.0f32; n * dim];
    rng.fill(&mut data);
    Matrix::from_flat(n, dim, data)
}

fn bench_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("diversity");
    for &n in &[64usize, 128, 256] {
        let e = embeddings(n, 32);
        let uncertainty = vec![0.5f32; n];
        group.bench_with_input(BenchmarkId::new("ours_min_distance", n), &e, |b, e| {
            b.iter(|| diversity_scores(std::hint::black_box(e)));
        });
        group.bench_with_input(BenchmarkId::new("qp_relaxation", n), &e, |b, e| {
            let selector = QpSelector::new();
            let solver = QpSolver::default();
            b.iter(|| {
                let problem = selector
                    .build_problem(std::hint::black_box(e), &uncertainty, 25)
                    .unwrap();
                solver.solve(&problem)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diversity);
criterion_main!(benches);
