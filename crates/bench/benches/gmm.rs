//! Gaussian-mixture micro-benchmarks: the EM fit that seeds Algorithm 2's
//! query pool, and per-sample scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotspot_gmm::{GaussianMixture, GmmConfig};
use hotspot_nn::InitRng;

fn data(n: usize, dim: usize) -> Vec<f32> {
    let mut rng = InitRng::seeded(2, 1.0);
    let mut out = vec![0.0f32; n * dim];
    rng.fill(&mut out);
    // Shift half the points to make two real clusters.
    for row in out.chunks_exact_mut(dim).step_by(2) {
        for v in row {
            *v += 6.0;
        }
    }
    out
}

fn bench_gmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm");
    for &n in &[500usize, 2000] {
        let d = data(n, 16);
        group.bench_with_input(BenchmarkId::new("fit_4_components", n), &d, |b, d| {
            let config = GmmConfig {
                components: 4,
                max_iters: 20,
                ..GmmConfig::default()
            };
            b.iter(|| GaussianMixture::fit(std::hint::black_box(d), 16, &config).expect("fit"));
        });
    }
    let d = data(2000, 16);
    let gmm = GaussianMixture::fit(&d, 16, &GmmConfig::default()).expect("fit");
    group.bench_function("score_2000_samples", |b| {
        b.iter(|| gmm.score_samples(std::hint::black_box(&d)));
    });
    group.finish();
}

criterion_group!(benches, bench_gmm);
criterion_main!(benches);
