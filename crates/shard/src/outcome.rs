//! Per-clip labelling outcomes: the unit of shard work, checkpoint
//! commits, salvage, and the deterministic merge.

use hotspot_litho::{FaultInjectionStats, Label, OracleError, OracleStateSnapshot};
use hotspot_store::{ByteReader, ByteWriter, Restore, Snapshot, StoreError};

/// Everything one oracle query changed, expressed as deltas against the
/// snapshot the worker's oracle held before the query.
///
/// Because the fault schedule is pure in `(seed, clip, attempt)` and a
/// query touches only its own clip's cache entry and attempt counter, a
/// `ClipOutcome` is independent of which worker produced it and of every
/// other clip in the batch — applying a batch's outcomes in ascending clip
/// order onto the pre-batch snapshot therefore reproduces one canonical
/// merged state for any partition, worker count, or recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipOutcome {
    /// The queried clip.
    pub clip: usize,
    /// The label result the caller sees.
    pub result: Result<Label, OracleError>,
    /// Cache entry the query inserted for `clip`, if it was a billable
    /// cache miss.
    pub cache_upsert: Option<Label>,
    /// Growth of the oracle's total-query meter.
    pub total_delta: usize,
    /// Cache-bypassing re-simulations billed (quorum votes).
    pub resimulations_delta: usize,
    /// Failed attempts absorbed by the retry layer.
    pub retries_delta: usize,
    /// Queries abandoned by the retry layer.
    pub giveups_delta: usize,
    /// Labels cast as quorum votes.
    pub quorum_votes_delta: usize,
    /// The fault layer's attempt counter for `clip` after the query (the
    /// seeded fault schedule keys on it), when a fault layer is present.
    pub attempts_after: Option<u64>,
    /// Faults the fault layer injected while serving this query.
    pub faults_delta: FaultInjectionStats,
}

fn cache_lookup(snapshot: &OracleStateSnapshot, clip: usize) -> Option<Label> {
    snapshot
        .cache
        .binary_search_by_key(&clip, |&(i, _)| i)
        .ok()
        .map(|pos| snapshot.cache[pos].1)
}

fn attempts_lookup(snapshot: &OracleStateSnapshot, clip: usize) -> Option<u64> {
    let fault = snapshot.fault.as_ref()?;
    fault
        .attempts
        .binary_search_by_key(&clip, |&(i, _)| i)
        .ok()
        .map(|pos| fault.attempts[pos].1)
}

impl ClipOutcome {
    /// Builds the outcome of one query by differencing the worker oracle's
    /// state snapshots from immediately before and after it.
    pub fn from_diff(
        clip: usize,
        result: Result<Label, OracleError>,
        before: &OracleStateSnapshot,
        after: &OracleStateSnapshot,
    ) -> Self {
        let cache_upsert = match cache_lookup(before, clip) {
            Some(_) => None, // already cached before the query: not billable
            None => cache_lookup(after, clip),
        };
        let (retries_delta, giveups_delta, quorum_votes_delta) =
            match (before.retry.as_ref(), after.retry.as_ref()) {
                (Some(b), Some(a)) => (
                    a.retries.saturating_sub(b.retries),
                    a.giveups.saturating_sub(b.giveups),
                    a.quorum_votes.saturating_sub(b.quorum_votes),
                ),
                _ => (0, 0, 0),
            };
        let faults_delta = match (before.fault.as_ref(), after.fault.as_ref()) {
            (Some(b), Some(a)) => FaultInjectionStats {
                transients: a.injected.transients.saturating_sub(b.injected.transients),
                timeouts: a.injected.timeouts.saturating_sub(b.injected.timeouts),
                corruptions: a
                    .injected
                    .corruptions
                    .saturating_sub(b.injected.corruptions),
                flips: a.injected.flips.saturating_sub(b.injected.flips),
                permanents: a.injected.permanents.saturating_sub(b.injected.permanents),
            },
            _ => FaultInjectionStats::default(),
        };
        ClipOutcome {
            clip,
            result,
            cache_upsert,
            total_delta: after.total.saturating_sub(before.total),
            resimulations_delta: after.resimulations.saturating_sub(before.resimulations),
            retries_delta,
            giveups_delta,
            quorum_votes_delta,
            attempts_after: attempts_lookup(after, clip),
            faults_delta,
        }
    }

    /// The outcome of a clip no worker could label (its shard died before
    /// reaching it and the recovery round could not recompute it): a
    /// transient failure with zero billing, so the framework returns the
    /// clip to the unlabeled pool exactly as for any other failed label.
    pub fn abandoned(clip: usize) -> Self {
        ClipOutcome {
            clip,
            result: Err(OracleError::Transient { index: clip }),
            cache_upsert: None,
            total_delta: 0,
            resimulations_delta: 0,
            retries_delta: 0,
            giveups_delta: 0,
            quorum_votes_delta: 0,
            attempts_after: None,
            faults_delta: FaultInjectionStats::default(),
        }
    }

    /// Billable litho simulations this query performed: a cache-miss
    /// simulation plus every cache-bypassing re-simulation — the outcome's
    /// contribution to `litho.oracle.calls` (Litho#, Eq. 2).
    pub fn billable(&self) -> usize {
        usize::from(self.cache_upsert.is_some()) + self.resimulations_delta
    }

    /// Applies this outcome's deltas onto a merged snapshot. Outcomes must
    /// be applied in ascending clip order over the batch's pre-fan-out
    /// snapshot for the canonical merge.
    pub fn apply_to(&self, merged: &mut OracleStateSnapshot) {
        if let Some(label) = self.cache_upsert {
            match merged.cache.binary_search_by_key(&self.clip, |&(i, _)| i) {
                Ok(pos) => merged.cache[pos].1 = label,
                Err(pos) => merged.cache.insert(pos, (self.clip, label)),
            }
        }
        merged.total += self.total_delta;
        merged.resimulations += self.resimulations_delta;
        if let Some(retry) = merged.retry.as_mut() {
            retry.retries += self.retries_delta;
            retry.giveups += self.giveups_delta;
            retry.quorum_votes += self.quorum_votes_delta;
        }
        if let Some(fault) = merged.fault.as_mut() {
            if let Some(attempts) = self.attempts_after {
                match fault.attempts.binary_search_by_key(&self.clip, |&(i, _)| i) {
                    Ok(pos) => fault.attempts[pos].1 = attempts,
                    Err(pos) => fault.attempts.insert(pos, (self.clip, attempts)),
                }
            }
            fault.injected.transients += self.faults_delta.transients;
            fault.injected.timeouts += self.faults_delta.timeouts;
            fault.injected.corruptions += self.faults_delta.corruptions;
            fault.injected.flips += self.faults_delta.flips;
            fault.injected.permanents += self.faults_delta.permanents;
        }
    }
}

fn encode_result(result: &Result<Label, OracleError>, w: &mut ByteWriter) {
    match result {
        Ok(label) => {
            w.put_u8(0);
            label.encode(w);
        }
        Err(OracleError::Transient { index }) => {
            w.put_u8(1);
            w.put_usize(*index);
        }
        Err(OracleError::Timeout { index }) => {
            w.put_u8(2);
            w.put_usize(*index);
        }
        Err(OracleError::CorruptedLabel { index }) => {
            w.put_u8(3);
            w.put_usize(*index);
        }
        Err(OracleError::Permanent { index }) => {
            w.put_u8(4);
            w.put_usize(*index);
        }
        Err(OracleError::OutOfRange { index, len }) => {
            w.put_u8(5);
            w.put_usize(*index);
            w.put_usize(*len);
        }
    }
}

fn decode_result(r: &mut ByteReader<'_>) -> Result<Result<Label, OracleError>, StoreError> {
    match r.get_u8("clip outcome result tag")? {
        0 => Ok(Ok(Label::decode(r)?)),
        1 => Ok(Err(OracleError::Transient {
            index: r.get_usize("clip outcome error")?,
        })),
        2 => Ok(Err(OracleError::Timeout {
            index: r.get_usize("clip outcome error")?,
        })),
        3 => Ok(Err(OracleError::CorruptedLabel {
            index: r.get_usize("clip outcome error")?,
        })),
        4 => Ok(Err(OracleError::Permanent {
            index: r.get_usize("clip outcome error")?,
        })),
        5 => Ok(Err(OracleError::OutOfRange {
            index: r.get_usize("clip outcome error")?,
            len: r.get_usize("clip outcome error")?,
        })),
        tag => Err(StoreError::Corrupt {
            detail: format!("invalid clip outcome result tag {tag}"),
        }),
    }
}

impl Snapshot for ClipOutcome {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.clip);
        encode_result(&self.result, w);
        self.cache_upsert.encode(w);
        w.put_usize(self.total_delta);
        w.put_usize(self.resimulations_delta);
        w.put_usize(self.retries_delta);
        w.put_usize(self.giveups_delta);
        w.put_usize(self.quorum_votes_delta);
        self.attempts_after.encode(w);
        self.faults_delta.encode(w);
    }
}

impl Restore for ClipOutcome {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(ClipOutcome {
            clip: r.get_usize("clip outcome")?,
            result: decode_result(r)?,
            cache_upsert: Option::<Label>::decode(r)?,
            total_delta: r.get_usize("clip outcome")?,
            resimulations_delta: r.get_usize("clip outcome")?,
            retries_delta: r.get_usize("clip outcome")?,
            giveups_delta: r.get_usize("clip outcome")?,
            quorum_votes_delta: r.get_usize("clip outcome")?,
            attempts_after: Option::<u64>::decode(r)?,
            faults_delta: FaultInjectionStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::{CountingOracle, LithoOracle};
    use hotspot_store::{decode_from_slice, encode_to_vec};

    fn sample() -> ClipOutcome {
        ClipOutcome {
            clip: 7,
            result: Ok(Label::Hotspot),
            cache_upsert: Some(Label::Hotspot),
            total_delta: 3,
            resimulations_delta: 2,
            retries_delta: 1,
            giveups_delta: 0,
            quorum_votes_delta: 3,
            attempts_after: Some(4),
            faults_delta: FaultInjectionStats {
                transients: 1,
                ..FaultInjectionStats::default()
            },
        }
    }

    #[test]
    fn outcome_round_trips_through_codec() {
        for outcome in [
            sample(),
            ClipOutcome::abandoned(9),
            ClipOutcome {
                result: Err(OracleError::OutOfRange { index: 3, len: 2 }),
                ..sample()
            },
            ClipOutcome {
                result: Err(OracleError::Permanent { index: 7 }),
                cache_upsert: None,
                ..sample()
            },
        ] {
            let bytes = encode_to_vec(&outcome);
            let back: ClipOutcome = decode_from_slice(&bytes, "clip outcome").unwrap();
            assert_eq!(back, outcome);
        }
    }

    #[test]
    fn billable_counts_cache_miss_plus_resimulations() {
        assert_eq!(sample().billable(), 3);
        assert_eq!(ClipOutcome::abandoned(0).billable(), 0);
    }

    #[test]
    fn diff_of_a_cache_miss_captures_the_upsert() {
        let mut oracle = CountingOracle::new(vec![Label::Hotspot, Label::NonHotspot]);
        let before = oracle.state_snapshot().unwrap();
        let result = oracle.try_query(1);
        let after = oracle.state_snapshot().unwrap();
        let outcome = ClipOutcome::from_diff(1, result, &before, &after);
        assert_eq!(outcome.result, Ok(Label::NonHotspot));
        assert_eq!(outcome.cache_upsert, Some(Label::NonHotspot));
        assert_eq!(outcome.total_delta, 1);
        assert_eq!(outcome.billable(), 1);

        // A repeat query is a cache hit: no upsert, nothing billable.
        let before = after;
        let result = oracle.try_query(1);
        let after = oracle.state_snapshot().unwrap();
        let hit = ClipOutcome::from_diff(1, result, &before, &after);
        assert_eq!(hit.cache_upsert, None);
        assert_eq!(hit.billable(), 0);
        assert_eq!(hit.total_delta, 1);
    }

    #[test]
    fn apply_reproduces_the_sequential_snapshot() {
        let truth: Vec<Label> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    Label::Hotspot
                } else {
                    Label::NonHotspot
                }
            })
            .collect();
        let mut sequential = CountingOracle::new(truth.clone());
        let pre = sequential.state_snapshot().unwrap();

        // Record per-clip outcomes in one order...
        let mut outcomes = Vec::new();
        for clip in [5, 2, 7, 0] {
            let before = sequential.state_snapshot().unwrap();
            let result = sequential.try_query(clip);
            let after = sequential.state_snapshot().unwrap();
            outcomes.push(ClipOutcome::from_diff(clip, result, &before, &after));
        }

        // ...and re-apply them in ascending clip order onto the pre state.
        outcomes.sort_by_key(|o| o.clip);
        let mut merged = pre;
        for outcome in &outcomes {
            outcome.apply_to(&mut merged);
        }
        assert_eq!(merged, sequential.state_snapshot().unwrap());
    }
}
