//! Sharded multi-worker oracle labelling with dead-shard recovery and a
//! deterministic merge.
//!
//! The active-entropy loop bills every simulator call into the paper's
//! `Litho#`, so scaling a labelling campaign across worker threads must not
//! change billing, labels, or the canonical journal by a single byte. This
//! crate wraps any snapshot-capable [`hotspot_litho::LithoOracle`] stack in a
//! [`ShardedOracle`] that:
//!
//! 1. **Partitions** each labelling batch across N worker threads, each
//!    running its own oracle stack (built by a caller-supplied factory,
//!    e.g. `RetryOracle` over `FaultyOracle` over `CountingOracle`) restored
//!    from the master's pre-batch state snapshot.
//! 2. **Silences** worker-thread telemetry
//!    ([`hotspot_telemetry::silence_thread`]) and instead has each worker
//!    report a [`ClipOutcome`] per clip — the label result plus the exact
//!    state and billing deltas its query produced.
//! 3. **Merges deterministically**: outcomes are sorted by clip id, applied
//!    onto the pre-batch snapshot, restored into the master oracle, and
//!    billed into the process-wide counters exactly once by the coordinator
//!    — so `Litho#`, quorum votes, and journal events are byte-identical for
//!    any worker count. This holds because the seeded fault schedule is a
//!    pure function of `(fault seed, clip, attempt)` and each clip's oracle
//!    interaction touches only that clip's cache entry and attempt counter.
//! 4. **Recovers dead or hung shards**: workers commit their outcomes after
//!    every clip through per-shard [`hotspot_store::CheckpointStore`]
//!    atomic-rename commits; the coordinator captures panics, bounds each
//!    shard by a poll deadline over the injectable
//!    [`hotspot_litho::Clock`], salvages committed outcomes from a lost
//!    worker's store, and reassigns the orphaned remainder to a fresh
//!    recovery round. Purity makes a salvaged outcome identical to a
//!    recomputed one, so a murdered worker leaves no trace in the merged
//!    state. Clips no round could label degrade gracefully to transient
//!    failures, which the framework returns to the unlabeled pool.
//!
//! All coordination provenance is journalled through `shard.*` telemetry
//! names on the `shard.coordinator` target, both of which canonical
//! journals withhold — worker counts and chaos injections never reach the
//! byte-identity oracle.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod coordinator;
mod outcome;

pub use coordinator::{FailureMode, KillSpec, ShardConfig, ShardedOracle};
pub use outcome::ClipOutcome;
