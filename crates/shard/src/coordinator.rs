//! The shard coordinator: fan-out, dead/hung-shard recovery, and the
//! deterministic merge.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Duration;

use hotspot_litho::{
    Clock, Label, LithoOracle, OracleError, OracleStateSnapshot, OracleStats, SystemClock,
};
use hotspot_store::{decode_from_slice, encode_to_vec, CheckpointFile, CheckpointStore};
use hotspot_telemetry as telemetry;
use rand_chacha::{ChaCha8Rng, RngCore, SeedableRng};

use crate::ClipOutcome;

/// How a chaos-injected worker failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The worker panics after committing its first assigned clip,
    /// exercising salvage-from-checkpoint plus reassignment of the rest.
    Panic,
    /// The worker blocks forever before touching any clip, exercising the
    /// coordinator's poll deadline and full-sub-batch reassignment.
    Hang,
}

/// A chaos injection: murder worker `shard` on the `batch`-th labelling
/// batch (1-based over every `try_query_batch` call the oracle serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Worker index in `0..workers`.
    pub shard: usize,
    /// 1-based batch ordinal the failure fires on.
    pub batch: usize,
    /// How the worker dies.
    pub mode: FailureMode,
}

/// Configuration of a [`ShardedOracle`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads per labelling batch (≥ 1). The merged results are
    /// byte-identical for every value.
    pub workers: usize,
    /// Directory for per-shard checkpoint commits (`<dir>/shard-<i>/`).
    /// `None` disables commits; dead-shard recovery then recomputes
    /// orphaned clips instead of salvaging them — by purity the merged
    /// result is identical either way.
    pub dir: Option<PathBuf>,
    /// Seed of the coordinator's ChaCha8 stream; per-shard streams are
    /// split off it via the `stream_state` key-perturbation, feeding each
    /// worker's retry-jitter seed (jitter shapes backoff sleeps only,
    /// never labels).
    pub stream_seed: u64,
    /// Coordinator poll cadence while waiting on workers.
    pub poll_interval: Duration,
    /// Polls before an unfinished worker is declared hung and abandoned.
    pub deadline_polls: usize,
    /// Optional chaos injection, consumed the first time its batch ordinal
    /// comes up.
    pub kill: Option<KillSpec>,
}

impl ShardConfig {
    /// A default configuration for `workers` threads: no commit directory,
    /// 1 ms polls with a 10-minute deadline, no chaos.
    pub fn new(workers: usize) -> Self {
        ShardConfig {
            workers: workers.max(1),
            dir: None,
            stream_seed: 0,
            poll_interval: Duration::from_millis(1),
            deadline_polls: 600_000,
            kill: None,
        }
    }

    /// Enables per-shard checkpoint commits under `dir`.
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Seeds the per-shard jitter streams.
    pub fn with_stream_seed(mut self, seed: u64) -> Self {
        self.stream_seed = seed;
        self
    }

    /// Installs a chaos injection.
    pub fn with_kill(mut self, kill: KillSpec) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Overrides the hung-shard deadline (in polls).
    pub fn with_deadline_polls(mut self, polls: usize) -> Self {
        self.deadline_polls = polls;
        self
    }
}

const OUTCOME_SECTION: &str = "shard.outcomes";

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`LithoOracle`] that fans every labelling batch out across worker
/// threads and merges the results deterministically.
///
/// `master` holds the authoritative oracle state between batches; single
/// queries ([`LithoOracle::try_query`], [`LithoOracle::resimulate`]) go
/// straight through it on the calling thread. For batches, `factory(shard,
/// jitter_seed)` builds one fresh oracle stack per worker, which is restored
/// from the master's pre-batch snapshot, labels a disjoint sub-batch on its
/// own thread (telemetry silenced), and reports per-clip [`ClipOutcome`]
/// deltas. The coordinator merges outcomes in ascending clip order, restores
/// the merged snapshot into the master, and replays billing and per-clip
/// oracle events exactly once — so journals and `Litho#` are invariant in
/// the worker count and in any dead-shard recovery the batch needed.
pub struct ShardedOracle<O, F, C = SystemClock> {
    master: O,
    factory: F,
    config: ShardConfig,
    clock: C,
    stream: ChaCha8Rng,
    batches: usize,
}

impl<O, F, C> fmt::Debug for ShardedOracle<O, F, C>
where
    O: fmt::Debug,
    C: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedOracle")
            .field("master", &self.master)
            .field("config", &self.config)
            .field("clock", &self.clock)
            .field("batches", &self.batches)
            .finish_non_exhaustive()
    }
}

impl<O, F> ShardedOracle<O, F, SystemClock> {
    /// Wraps `master`, fanning batches out across `config.workers` threads
    /// whose oracle stacks are built by `factory(shard, jitter_seed)`.
    pub fn new(master: O, factory: F, config: ShardConfig) -> Self {
        Self::with_clock(master, factory, config, SystemClock)
    }
}

impl<O, F, C> ShardedOracle<O, F, C> {
    /// [`ShardedOracle::new`] with an explicit coordinator clock (tests use
    /// [`hotspot_litho::VirtualClock`] to exercise the hung-shard deadline
    /// without real sleeps).
    pub fn with_clock(master: O, factory: F, config: ShardConfig, clock: C) -> Self {
        let stream = ChaCha8Rng::seed_from_u64(config.stream_seed);
        ShardedOracle {
            master,
            factory,
            config,
            clock,
            stream,
            batches: 0,
        }
    }

    /// The wrapped master oracle.
    pub fn master(&self) -> &O {
        &self.master
    }

    /// Unwraps into the master oracle.
    pub fn into_inner(self) -> O {
        self.master
    }

    /// Labelling batches served so far (the ordinal [`KillSpec::batch`]
    /// counts against).
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Per-shard jitter seeds for this batch: the coordinator stream is
    /// advanced once, then split per shard by perturbing the captured
    /// `stream_state` key — distinct shards get decorrelated streams that
    /// are independent of the worker count of any *other* shard.
    fn shard_jitter_seeds(&mut self) -> Vec<u64> {
        let _ = self.stream.next_u64(); // one advance per batch
        let base = self.stream.stream_state();
        (0..self.config.workers)
            .map(|shard| {
                let mut state = base;
                let h = splitmix64(self.config.stream_seed ^ (shard as u64 + 1));
                state.key[0] ^= h as u32;
                state.key[1] ^= (h >> 32) as u32;
                match ChaCha8Rng::from_stream_state(state) {
                    Some(mut rng) => rng.next_u64(),
                    // Unreachable (the index comes from a valid state), but
                    // a plain seed keeps the path total.
                    None => h,
                }
            })
            .collect()
    }
}

/// Labels one worker's sub-batch, reporting a [`ClipOutcome`] per clip.
/// Runs with telemetry silenced: the coordinator replays the merged
/// effects exactly once, so nothing a worker does may leak into journals,
/// counters, or billing directly. Tracing is the exception — when the
/// coordinator hands a [`telemetry::TraceHandoff`] over, the worker adopts
/// a per-shard trace buffer (track `1 + shard`), times its whole sub-batch
/// under a `shard.worker` span parented onto the coordinator's open span,
/// and returns the harvested records for the deterministic merge. A worker
/// that dies simply never hands records back.
fn worker_run<O: LithoOracle>(
    mut oracle: O,
    shard: usize,
    clips: Vec<usize>,
    mut committer: Option<ShardCommitter>,
    kill: Option<FailureMode>,
    handoff: Option<telemetry::TraceHandoff>,
) -> (Vec<ClipOutcome>, Vec<telemetry::TraceRecord>) {
    let _mute = telemetry::silence_thread();
    let _trace = telemetry::trace::adopt(handoff, shard as u64 + 1);
    if kill == Some(FailureMode::Hang) {
        // Simulated hang: block before touching any clip so the whole
        // sub-batch is orphaned and reassigned.
        loop {
            std::thread::park();
        }
    }
    let span = telemetry::span(telemetry::names::SPAN_SHARD_WORKER)
        .with("shard", shard as u64)
        .with("clips", clips.len() as u64);
    let mut outcomes = Vec::new();
    for &clip in &clips {
        let before = oracle.state_snapshot().unwrap_or_default();
        let result = oracle.try_query(clip);
        let after = oracle.state_snapshot().unwrap_or_default();
        outcomes.push(ClipOutcome::from_diff(clip, result, &before, &after));
        if let Some(committer) = committer.as_mut() {
            committer.commit(&outcomes);
        }
        if kill == Some(FailureMode::Panic) {
            // lithohd-lint: allow(panic-safety) — deliberate chaos injection; the coordinator captures the panic
            panic!("chaos kill: shard worker murdered after first commit");
        }
    }
    drop(span);
    (outcomes, telemetry::trace::harvest())
}

/// Per-shard checkpoint committer: after every clip the worker's outcomes
/// so far are committed through the store's tmp+fsync+rename protocol, so
/// whatever a dead worker finished is salvageable from disk.
struct ShardCommitter {
    store: CheckpointStore,
    shard: u64,
    ordinal: u64,
    seq: u64,
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

impl ShardCommitter {
    fn open(dir: &Path, shard: usize, ordinal: u64) -> Option<ShardCommitter> {
        let store = CheckpointStore::open(shard_dir(dir, shard)).ok()?;
        Some(ShardCommitter {
            store,
            shard: shard as u64,
            ordinal,
            seq: 0,
        })
    }

    fn commit(&mut self, outcomes: &[ClipOutcome]) {
        self.seq += 1;
        let mut file = CheckpointFile::new();
        file.put(
            OUTCOME_SECTION,
            encode_to_vec(&(self.ordinal, self.shard, outcomes.to_vec())),
        );
        // Best-effort: a failed commit only shrinks what a recovery can
        // salvage; reassignment recomputes the remainder identically.
        let _ = self.store.save((self.ordinal << 20) | self.seq, &file);
    }
}

/// Loads the outcomes a lost worker committed for the current batch, if any.
fn salvage(dir: &Path, shard: usize, ordinal: u64) -> Vec<ClipOutcome> {
    let Ok(store) = CheckpointStore::open(shard_dir(dir, shard)) else {
        return Vec::new();
    };
    let Ok(Some((_key, file))) = store.load_latest() else {
        return Vec::new();
    };
    let Some(payload) = file.get(OUTCOME_SECTION) else {
        return Vec::new();
    };
    let Ok((saved_ordinal, saved_shard, outcomes)) =
        decode_from_slice::<(u64, u64, Vec<ClipOutcome>)>(payload, "shard outcomes")
    else {
        return Vec::new();
    };
    if saved_ordinal != ordinal || saved_shard != shard as u64 {
        return Vec::new(); // stale commit from an earlier batch
    }
    outcomes
}

impl<O, F, C> ShardedOracle<O, F, C>
where
    O: LithoOracle + Send + 'static,
    F: Fn(usize, u64) -> O,
    C: Clock,
{
    /// Runs one fan-out round over `clips`, returning the collected
    /// outcomes and the clips lost to dead or hung workers. `blocking`
    /// joins every worker unconditionally (recovery rounds have no chaos
    /// left, so a bounded deadline would only add nondeterminism).
    #[allow(clippy::too_many_arguments)]
    fn run_round(
        &mut self,
        clips: &[usize],
        pre: &OracleStateSnapshot,
        ordinal: u64,
        seeds: &[u64],
        kill: Option<KillSpec>,
        commit_dir: Option<&Path>,
        blocking: bool,
    ) -> (Vec<ClipOutcome>, Vec<usize>) {
        let shards = self.config.workers.min(clips.len()).max(1);
        let chunk = clips.len().div_ceil(shards);
        let subs: Vec<Vec<usize>> = clips.chunks(chunk).map(<[usize]>::to_vec).collect();
        // Captured once on the coordinator thread: every worker's root span
        // parents onto the span open here (e.g. the selector's batch query).
        let handoff = telemetry::trace::handoff();
        type WorkerResult = (Vec<ClipOutcome>, Vec<telemetry::TraceRecord>);
        let mut handles: Vec<JoinHandle<WorkerResult>> = Vec::with_capacity(subs.len());
        for (shard, sub) in subs.iter().enumerate() {
            let mut oracle = (self.factory)(shard, seeds.get(shard).copied().unwrap_or(0));
            let restored = oracle.restore_state(pre);
            debug_assert!(restored, "factory oracle must accept the master snapshot");
            let mode = kill.and_then(|k| (k.shard == shard).then_some(k.mode));
            let committer = commit_dir.and_then(|dir| ShardCommitter::open(dir, shard, ordinal));
            let sub = sub.clone();
            handles.push(std::thread::spawn(move || {
                worker_run(oracle, shard, sub, committer, mode, handoff)
            }));
        }

        if !blocking {
            let mut polls = 0usize;
            while polls < self.config.deadline_polls && !handles.iter().all(JoinHandle::is_finished)
            {
                self.clock.sleep(self.config.poll_interval);
                polls += 1;
            }
        }

        let mut outcomes = Vec::new();
        let mut lost = Vec::new();
        for (shard, handle) in handles.into_iter().enumerate() {
            let sub = &subs[shard];
            let mut dead = false;
            if blocking || handle.is_finished() {
                match handle.join() {
                    Ok((mut worker_outcomes, trace_records)) => {
                        // Workers are joined in ascending shard order, so
                        // absorbing here keeps the merged trace (and the
                        // replayed profile events below) deterministic.
                        for record in &trace_records {
                            telemetry::debug(
                                "profile",
                                record.name,
                                &[
                                    ("span", record.name.into()),
                                    ("duration_us", record.dur_us.into()),
                                    ("shard", (shard as u64).into()),
                                ],
                            );
                        }
                        telemetry::trace::absorb(trace_records);
                        outcomes.append(&mut worker_outcomes);
                        continue;
                    }
                    Err(_panic) => dead = true,
                }
            }
            // A dead (panicked) or hung (deadline-exceeded, now detached)
            // worker: salvage whatever it committed, orphan the rest.
            if dead {
                telemetry::counter(telemetry::names::SHARD_WORKERS_DEAD).incr();
            } else {
                telemetry::counter(telemetry::names::SHARD_WORKERS_HUNG).incr();
            }
            let salvaged = commit_dir
                .map(|dir| salvage(dir, shard, ordinal))
                .unwrap_or_default();
            telemetry::counter(telemetry::names::SHARD_OUTCOMES_SALVAGED)
                .add(salvaged.len() as u64);
            let covered: BTreeSet<usize> = salvaged.iter().map(|o| o.clip).collect();
            let orphans: Vec<usize> = sub
                .iter()
                .copied()
                .filter(|clip| !covered.contains(clip))
                .collect();
            telemetry::warn(
                "shard.coordinator",
                telemetry::names::EVENT_SHARD_WORKER_LOST,
                &[
                    ("batch", ordinal.into()),
                    ("shard", (shard as u64).into()),
                    ("dead", dead.into()),
                    ("salvaged", (salvaged.len() as u64).into()),
                    ("orphaned", (orphans.len() as u64).into()),
                ],
            );
            outcomes.extend(salvaged);
            lost.extend(orphans);
        }
        (outcomes, lost)
    }
}

impl<O, F, C> LithoOracle for ShardedOracle<O, F, C>
where
    O: LithoOracle + Send + 'static,
    F: Fn(usize, u64) -> O,
    C: Clock,
{
    fn try_query(&mut self, index: usize) -> Result<Label, OracleError> {
        self.master.try_query(index)
    }

    fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
        self.master.resimulate(index)
    }

    fn try_query_batch(&mut self, indices: &[usize]) -> Vec<Result<Label, OracleError>> {
        self.batches += 1;
        let ordinal = self.batches as u64;
        // The chaos spec fires on its batch ordinal exactly once, even when
        // the batch turns out to be empty or unshardable.
        let kill = match self.config.kill {
            Some(spec) if spec.batch as u64 == ordinal => {
                self.config.kill = None;
                Some(spec)
            }
            _ => None,
        };
        if indices.is_empty() {
            return Vec::new();
        }
        let Some(pre) = self.master.state_snapshot() else {
            // A stack that cannot capture state cannot replay worker
            // effects; degrade to the sequential master path.
            return indices.iter().map(|&i| self.master.try_query(i)).collect();
        };

        // lithohd-lint: allow(determinism-clock) — batch latency histogram is observability, not logic
        let started = std::time::Instant::now();
        telemetry::counter(telemetry::names::SHARD_BATCHES).incr();
        let seeds = self.shard_jitter_seeds();
        let commit_dir = self.config.dir.clone();

        let (mut outcomes, lost) = self.run_round(
            indices,
            &pre,
            ordinal,
            &seeds,
            kill,
            commit_dir.as_deref(),
            false,
        );
        if !lost.is_empty() {
            // Reassign orphaned clips to a fresh recovery round. Purity of
            // the per-clip schedule makes the recomputed outcomes identical
            // to what the lost worker would have produced.
            telemetry::counter(telemetry::names::SHARD_CLIPS_REASSIGNED).add(lost.len() as u64);
            telemetry::info(
                "shard.coordinator",
                telemetry::names::EVENT_SHARD_REASSIGNED,
                &[
                    ("batch", ordinal.into()),
                    ("clips", (lost.len() as u64).into()),
                ],
            );
            let (recovered, abandoned) =
                self.run_round(&lost, &pre, ordinal, &seeds, None, None, true);
            outcomes.extend(recovered);
            // Graceful degradation: clips even the recovery round lost
            // become un-billed transient failures, which the framework
            // returns to the unlabeled pool.
            outcomes.extend(abandoned.into_iter().map(ClipOutcome::abandoned));
        }

        // Deterministic merge: ascending clip order over the pre-batch
        // snapshot, then one-shot billing and per-clip event replay.
        outcomes.sort_by_key(|o| o.clip);
        let mut merged = pre;
        let mut failures = 0u64;
        for outcome in &outcomes {
            outcome.apply_to(&mut merged);
            if outcome.cache_upsert.is_some() {
                telemetry::counter(telemetry::names::ORACLE_CALLS).incr();
                telemetry::trace(
                    "litho.oracle",
                    "litho simulation",
                    &[("clip", (outcome.clip as u64).into())],
                );
            }
            for _ in 0..outcome.resimulations_delta {
                telemetry::counter(telemetry::names::ORACLE_CALLS).incr();
                telemetry::trace(
                    "litho.oracle",
                    "litho re-simulation",
                    &[("clip", (outcome.clip as u64).into())],
                );
            }
            telemetry::counter(telemetry::names::ORACLE_RETRIES).add(outcome.retries_delta as u64);
            telemetry::counter(telemetry::names::ORACLE_GIVEUPS).add(outcome.giveups_delta as u64);
            telemetry::counter(telemetry::names::ORACLE_QUORUM_VOTES)
                .add(outcome.quorum_votes_delta as u64);
            telemetry::counter(telemetry::names::ORACLE_FAULTS_INJECTED)
                .add(outcome.faults_delta.total() as u64);
            failures += u64::from(outcome.result.is_err());
        }
        let accepted = self.master.restore_state(&merged);
        debug_assert!(accepted, "master oracle must accept the merged snapshot");
        telemetry::counter(telemetry::names::SHARD_CLIPS).add(outcomes.len() as u64);
        telemetry::debug(
            "shard.coordinator",
            telemetry::names::EVENT_SHARD_BATCH_MERGED,
            &[
                ("batch", ordinal.into()),
                ("workers", (self.config.workers as u64).into()),
                ("clips", (outcomes.len() as u64).into()),
                ("failures", failures.into()),
            ],
        );
        telemetry::histogram(telemetry::names::SHARD_BATCH_SECONDS)
            .record(started.elapsed().as_secs_f64());

        let by_clip: BTreeMap<usize, Result<Label, OracleError>> =
            outcomes.iter().map(|o| (o.clip, o.result)).collect();
        indices
            .iter()
            .map(|&i| {
                by_clip
                    .get(&i)
                    .copied()
                    .unwrap_or(Err(OracleError::Transient { index: i }))
            })
            .collect()
    }

    fn unique_queries(&self) -> usize {
        self.master.unique_queries()
    }

    fn total_queries(&self) -> usize {
        self.master.total_queries()
    }

    fn stats(&self) -> OracleStats {
        self.master.stats()
    }

    fn state_snapshot(&self) -> Option<OracleStateSnapshot> {
        self.master.state_snapshot()
    }

    fn restore_state(&mut self, state: &OracleStateSnapshot) -> bool {
        self.master.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::{
        CountingOracle, FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock,
    };

    fn truth(n: usize) -> Vec<Label> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Label::Hotspot
                } else {
                    Label::NonHotspot
                }
            })
            .collect()
    }

    type FaultyStack = RetryOracle<FaultyOracle<CountingOracle>, VirtualClock>;

    fn faulty_stack(n: usize, jitter_seed: u64) -> FaultyStack {
        let rates = FaultRates {
            transient: 0.25,
            timeout: 0.05,
            corrupt: 0.05,
            flip: 0.02,
        };
        let flaky = FaultyOracle::new(CountingOracle::new(truth(n)), rates, 0xfa17_fa17);
        let policy = RetryPolicy {
            seed: jitter_seed,
            ..RetryPolicy::default()
        };
        RetryOracle::with_clock(flaky, policy, VirtualClock::new()).with_quorum(3)
    }

    fn sharded_faulty(
        n: usize,
        config: ShardConfig,
    ) -> ShardedOracle<FaultyStack, impl Fn(usize, u64) -> FaultyStack> {
        ShardedOracle::new(
            faulty_stack(n, 0),
            move |_shard, jitter_seed| faulty_stack(n, jitter_seed),
            config,
        )
    }

    const BATCHES: [&[usize]; 3] = [&[0, 5, 3, 11, 7], &[1, 2, 8], &[4, 6, 9, 10, 13, 12]];

    type BatchLabels = Vec<Vec<Result<Label, OracleError>>>;

    #[test]
    fn merged_state_is_worker_count_invariant() {
        let n = 16;
        let mut reference: Option<(BatchLabels, OracleStateSnapshot)> = None;
        for workers in [1, 2, 4] {
            let mut oracle = sharded_faulty(n, ShardConfig::new(workers).with_stream_seed(7));
            let results: Vec<_> = BATCHES.iter().map(|b| oracle.try_query_batch(b)).collect();
            let state = oracle.state_snapshot().unwrap();
            match &reference {
                None => reference = Some((results, state)),
                Some((ref_results, ref_state)) => {
                    assert_eq!(&results, ref_results, "labels differ at N={workers}");
                    assert_eq!(&state, ref_state, "merged state differs at N={workers}");
                }
            }
        }
    }

    #[test]
    fn sharded_plain_oracle_matches_sequential_billing() {
        let n = 12;
        let mut sequential = CountingOracle::new(truth(n));
        let mut sharded = ShardedOracle::new(
            CountingOracle::new(truth(n)),
            move |_, _| CountingOracle::new(truth(n)),
            ShardConfig::new(3),
        );
        for batch in BATCHES {
            let batch: Vec<usize> = batch.iter().copied().filter(|&i| i < n).collect();
            let seq: Vec<_> = batch.iter().map(|&i| sequential.try_query(i)).collect();
            let shd = sharded.try_query_batch(&batch);
            assert_eq!(seq, shd);
        }
        assert_eq!(sequential.stats(), sharded.stats());
        assert_eq!(
            sequential.state_snapshot().unwrap(),
            sharded.state_snapshot().unwrap()
        );
    }

    #[test]
    fn killed_worker_recovers_to_the_undisturbed_state() {
        let n = 16;
        let mut undisturbed = sharded_faulty(n, ShardConfig::new(3).with_stream_seed(5));
        let undisturbed_results: Vec<_> = BATCHES
            .iter()
            .map(|b| undisturbed.try_query_batch(b))
            .collect();

        let dir = std::env::temp_dir().join(format!("lithohd-shard-kill-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kill = KillSpec {
            shard: 1,
            batch: 3,
            mode: FailureMode::Panic,
        };
        let mut chaotic = sharded_faulty(
            n,
            ShardConfig::new(3)
                .with_stream_seed(5)
                .with_dir(&dir)
                .with_kill(kill),
        );
        let chaotic_results: Vec<_> = BATCHES.iter().map(|b| chaotic.try_query_batch(b)).collect();

        assert_eq!(undisturbed_results, chaotic_results);
        assert_eq!(
            undisturbed.state_snapshot().unwrap(),
            chaotic.state_snapshot().unwrap()
        );
        assert_eq!(undisturbed.stats(), chaotic.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_worker_without_commit_dir_recomputes_identically() {
        let n = 16;
        let mut undisturbed = sharded_faulty(n, ShardConfig::new(4).with_stream_seed(9));
        let undisturbed_results: Vec<_> = BATCHES
            .iter()
            .map(|b| undisturbed.try_query_batch(b))
            .collect();

        let kill = KillSpec {
            shard: 0,
            batch: 1,
            mode: FailureMode::Panic,
        };
        let mut chaotic =
            sharded_faulty(n, ShardConfig::new(4).with_stream_seed(9).with_kill(kill));
        let chaotic_results: Vec<_> = BATCHES.iter().map(|b| chaotic.try_query_batch(b)).collect();

        assert_eq!(undisturbed_results, chaotic_results);
        assert_eq!(
            undisturbed.state_snapshot().unwrap(),
            chaotic.state_snapshot().unwrap()
        );
    }

    #[test]
    fn hung_worker_is_abandoned_and_its_clips_reassigned() {
        let n = 16;
        let mut undisturbed = sharded_faulty(n, ShardConfig::new(3).with_stream_seed(3));
        let undisturbed_results: Vec<_> = BATCHES
            .iter()
            .map(|b| undisturbed.try_query_batch(b))
            .collect();

        let kill = KillSpec {
            shard: 2,
            batch: 2,
            mode: FailureMode::Hang,
        };
        let config = ShardConfig::new(3)
            .with_stream_seed(3)
            .with_kill(kill)
            .with_deadline_polls(200);
        let mut chaotic = ShardedOracle::with_clock(
            faulty_stack(n, 0),
            move |_shard, jitter_seed| faulty_stack(n, jitter_seed),
            config,
            VirtualClock::new(),
        );
        let chaotic_results: Vec<_> = BATCHES.iter().map(|b| chaotic.try_query_batch(b)).collect();

        assert_eq!(undisturbed_results, chaotic_results);
        assert_eq!(
            undisturbed.state_snapshot().unwrap(),
            chaotic.state_snapshot().unwrap()
        );
    }

    #[test]
    fn traced_chaos_batch_keeps_spans_and_results_intact() {
        // Satellite regression: a span dropped during a chaos-killed
        // worker's unwind must not corrupt the trace or sibling span paths,
        // and the traced chaotic campaign must still merge to the
        // undisturbed result.
        let n = 16;
        let mut undisturbed = sharded_faulty(n, ShardConfig::new(3).with_stream_seed(11));
        let undisturbed_results: Vec<_> = BATCHES
            .iter()
            .map(|b| undisturbed.try_query_batch(b))
            .collect();

        telemetry::trace::enable();
        let _ = telemetry::trace::drain_records();
        let kill = KillSpec {
            shard: 1,
            batch: 2,
            mode: FailureMode::Panic,
        };
        let mut chaotic =
            sharded_faulty(n, ShardConfig::new(3).with_stream_seed(11).with_kill(kill));
        let outer = telemetry::span("shard_trace_test");
        let chaotic_results: Vec<_> = BATCHES.iter().map(|b| chaotic.try_query_batch(b)).collect();
        drop(outer);

        assert_eq!(undisturbed_results, chaotic_results);
        assert_eq!(
            undisturbed.state_snapshot().unwrap(),
            chaotic.state_snapshot().unwrap()
        );

        let records = telemetry::trace::drain_records();
        let outer = records
            .iter()
            .find(|r| r.name == "shard_trace_test")
            .expect("coordinator span traced");
        assert_eq!(outer.track, 0);
        let workers: Vec<_> = records
            .iter()
            .filter(|r| r.name == telemetry::names::SPAN_SHARD_WORKER)
            .collect();
        assert!(!workers.is_empty(), "surviving workers must be traced");
        for worker in &workers {
            assert!(worker.track >= 1, "workers record on shard tracks");
            assert_eq!(
                worker.parent, outer.id,
                "worker roots parent onto the coordinator span"
            );
        }
        // The murdered worker unwound mid-span; spans opened afterwards on
        // this thread must still nest correctly (no stale stack frames).
        {
            let inner_path = {
                let _after = telemetry::span("shard_trace_after");
                let probe = telemetry::span("shard_trace_probe");
                probe.path()
            };
            assert_eq!(inner_path, "shard_trace_after/shard_trace_probe");
        }
    }

    #[test]
    fn single_queries_pass_through_the_master() {
        let n = 8;
        let mut oracle = ShardedOracle::new(
            CountingOracle::new(truth(n)),
            move |_, _| CountingOracle::new(truth(n)),
            ShardConfig::new(2),
        );
        assert_eq!(oracle.try_query(0), Ok(Label::Hotspot));
        assert_eq!(oracle.resimulate(0), Ok(Label::Hotspot));
        assert_eq!(oracle.unique_queries(), 2);
        assert_eq!(oracle.total_queries(), 2);
        assert_eq!(oracle.batches(), 0, "single queries are not batches");
    }

    #[test]
    fn empty_batch_consumes_its_kill_ordinal() {
        let n = 8;
        let kill = KillSpec {
            shard: 0,
            batch: 1,
            mode: FailureMode::Panic,
        };
        let mut oracle = ShardedOracle::new(
            CountingOracle::new(truth(n)),
            move |_, _| CountingOracle::new(truth(n)),
            ShardConfig::new(2).with_kill(kill),
        );
        assert!(oracle.try_query_batch(&[]).is_empty());
        // The spec fired (and was consumed) on the empty batch; the next
        // batch labels normally.
        let results = oracle.try_query_batch(&[1, 2]);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn out_of_range_clips_report_errors_without_billing() {
        let n = 4;
        let mut oracle = ShardedOracle::new(
            CountingOracle::new(truth(n)),
            move |_, _| CountingOracle::new(truth(n)),
            ShardConfig::new(2),
        );
        let results = oracle.try_query_batch(&[1, 99]);
        assert_eq!(results[0], Ok(Label::NonHotspot));
        assert_eq!(
            results[1],
            Err(OracleError::OutOfRange { index: 99, len: 4 })
        );
        assert_eq!(oracle.unique_queries(), 1);
    }
}
