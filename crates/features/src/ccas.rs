use hotspot_geom::Raster;

/// Concentric-circle area sampling (CCAS) features.
///
/// CCAS is the other canonical layout representation of the ML-hotspot
/// literature (used by the detector behind the paper's QP baseline \[14\]):
/// the clip is divided into `rings` concentric annuli around its centre,
/// each split into `sectors` angular wedges, and the mean metal density of
/// every (ring, sector) cell is a feature. The innermost cells describe the
/// core pattern, outer cells the optical context, and the representation is
/// robust to small edge displacements.
///
/// Returns `rings × sectors` values in ring-major order, each in `[0, 1]`.
/// Pixels beyond the largest ring are ignored; empty cells yield 0.
///
/// # Panics
///
/// Panics when `rings` or `sectors` is zero, or the raster is empty.
///
/// ```
/// use hotspot_geom::{Raster, Rect};
/// use hotspot_features::ccas_features;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut raster = Raster::zeros(Rect::new(0, 0, 200, 200)?, 10)?;
/// raster.fill_rect(&Rect::new(0, 0, 200, 200)?, 1.0);
/// let f = ccas_features(&raster, 4, 8);
/// assert_eq!(f.len(), 32);
/// assert!(f.iter().all(|&v| v > 0.99)); // solid metal everywhere
/// # Ok(())
/// # }
/// ```
pub fn ccas_features(raster: &Raster, rings: usize, sectors: usize) -> Vec<f32> {
    assert!(rings > 0, "ring count must be positive");
    assert!(sectors > 0, "sector count must be positive");
    let (w, h) = (raster.width(), raster.height());
    assert!(w > 0 && h > 0, "raster must not be empty");

    let cx = w as f64 / 2.0;
    let cy = h as f64 / 2.0;
    let max_radius = cx.min(cy);
    let mut sums = vec![0.0f64; rings * sectors];
    let mut counts = vec![0u32; rings * sectors];

    for row in 0..h {
        for col in 0..w {
            let dx = col as f64 + 0.5 - cx;
            let dy = row as f64 + 0.5 - cy;
            let radius = (dx * dx + dy * dy).sqrt();
            if radius >= max_radius {
                continue;
            }
            let ring = ((radius / max_radius) * rings as f64) as usize;
            let ring = ring.min(rings - 1);
            // atan2 in [0, 2π).
            let mut angle = dy.atan2(dx);
            if angle < 0.0 {
                angle += 2.0 * std::f64::consts::PI;
            }
            let sector = ((angle / (2.0 * std::f64::consts::PI)) * sectors as f64) as usize;
            let sector = sector.min(sectors - 1);
            let cell = ring * sectors + sector;
            sums[cell] += raster.at(row, col) as f64;
            counts[cell] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    fn raster_with(rects: &[Rect]) -> Raster {
        let mut r = Raster::zeros(Rect::new(0, 0, 400, 400).unwrap(), 10).unwrap();
        for rect in rects {
            r.fill_rect(rect, 1.0);
        }
        r
    }

    #[test]
    fn dimension_is_rings_by_sectors() {
        let f = ccas_features(&raster_with(&[]), 5, 12);
        assert_eq!(f.len(), 60);
    }

    #[test]
    fn empty_raster_is_all_zero() {
        let f = ccas_features(&raster_with(&[]), 4, 8);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn central_blob_lights_inner_ring_only() {
        // A small pad at the centre.
        let f = ccas_features(
            &raster_with(&[Rect::new(180, 180, 220, 220).unwrap()]),
            4,
            4,
        );
        let inner: f32 = f[..4].iter().sum();
        let outer: f32 = f[12..].iter().sum();
        assert!(inner > 0.5, "inner {inner}");
        assert!(outer < 1e-6, "outer {outer}");
    }

    #[test]
    fn right_side_wire_lights_right_sectors() {
        // A vertical wire on the right half only.
        let f = ccas_features(&raster_with(&[Rect::new(300, 0, 340, 400).unwrap()]), 2, 4);
        // Sector 0 spans angles [0, π/2): the "right-up" wedge; sector 1 is
        // "left-up", etc. Right-side metal lands in sectors 0 and 3.
        let outer = &f[4..8];
        assert!(outer[0] > 0.0 && outer[3] > 0.0, "{outer:?}");
        assert!(outer[1] < 1e-6 && outer[2] < 1e-6, "{outer:?}");
    }

    #[test]
    fn rotation_by_90_degrees_permutes_sectors() {
        // Horizontal wire vs vertical wire: same ring profile, shifted
        // sectors.
        let horizontal = ccas_features(&raster_with(&[Rect::new(0, 180, 400, 220).unwrap()]), 3, 4);
        let vertical = ccas_features(&raster_with(&[Rect::new(180, 0, 220, 400).unwrap()]), 3, 4);
        for ring in 0..3 {
            let h_ring: f32 = horizontal[ring * 4..(ring + 1) * 4].iter().sum();
            let v_ring: f32 = vertical[ring * 4..(ring + 1) * 4].iter().sum();
            assert!(
                (h_ring - v_ring).abs() < 0.12,
                "ring {ring}: {h_ring} vs {v_ring}"
            );
        }
    }

    #[test]
    fn values_are_bounded() {
        let f = ccas_features(&raster_with(&[Rect::new(0, 0, 400, 400).unwrap()]), 6, 10);
        assert!(f.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "ring count")]
    fn rejects_zero_rings() {
        let _ = ccas_features(&raster_with(&[]), 0, 4);
    }
}
