use std::fmt;

/// Error type for feature-extraction configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeatureError {
    /// The raster size is not a positive multiple of the block size.
    BadBlockTiling {
        /// Requested square raster edge in pixels.
        raster: usize,
        /// Requested block edge in pixels.
        block: usize,
    },
    /// More coefficients were requested than a block contains.
    TooManyCoefficients {
        /// Requested coefficients per block.
        requested: usize,
        /// Available coefficients (`block * block`).
        available: usize,
    },
    /// A matrix was built from rows of inconsistent width.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        found: usize,
    },
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::BadBlockTiling { raster, block } => write!(
                f,
                "raster edge {raster} px is not a positive multiple of block edge {block} px"
            ),
            FeatureError::TooManyCoefficients {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} coefficients per block but only {available} exist"
            ),
            FeatureError::RaggedRows { expected, found } => write!(
                f,
                "feature rows have inconsistent widths: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for FeatureError {}
