//! Feature extraction for layout clips: block DCT and density features.
//!
//! Hotspot detectors in the CNN literature (including the networks the DAC
//! 2021 paper builds on) do not consume raw layout pixels; they consume a
//! compressed spectral representation. This crate provides the standard
//! pipeline:
//!
//! 1. resample the clip raster to a fixed square size,
//! 2. tile it into `B × B` blocks,
//! 3. apply an orthonormal 2-D [`Dct2d`] per block,
//! 4. keep the first `k` coefficients in zig-zag order (low frequencies
//!    carry layout shape; high frequencies carry pixel noise).
//!
//! The result is a compact [`FeatureMatrix`] consumed by the classifier, the
//! GMM pre-clustering, and the diversity metric.
//!
//! # Example
//!
//! ```
//! use hotspot_geom::{Raster, Rect};
//! use hotspot_features::FeatureExtractor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let extractor = FeatureExtractor::new(32, 8, 6)?;
//! let mut raster = Raster::zeros(Rect::new(0, 0, 1200, 1200)?, 10)?;
//! raster.fill_rect(&Rect::new(0, 0, 600, 1200)?, 1.0);
//! let features = extractor.extract(&raster);
//! assert_eq!(features.len(), extractor.dim());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod ccas;
mod dct;
mod error;
mod extract;
mod matrix;
mod runlength;
mod zigzag;

pub use ccas::ccas_features;
pub use dct::Dct2d;
pub use error::FeatureError;
pub use extract::FeatureExtractor;
pub use matrix::FeatureMatrix;
pub use runlength::{run_length_histogram, DEFAULT_RUN_BINS};
pub use zigzag::zigzag_order;
