use crate::FeatureError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of per-clip feature vectors.
///
/// Row `i` is the feature vector of clip `i`. The type is shared by the
/// classifier input pipeline, the GMM, and the diversity metric, and carries
/// the normalisation helpers those consumers need.
///
/// ```
/// use hotspot_features::FeatureMatrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Builds a matrix from per-clip rows.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::RaggedRows`] when rows differ in width.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self, FeatureError> {
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * dim);
        let n = rows.len();
        for row in rows {
            if row.len() != dim {
                return Err(FeatureError::RaggedRows {
                    expected: dim,
                    found: row.len(),
                });
            }
            data.extend_from_slice(&row);
        }
        Ok(FeatureMatrix { rows: n, dim, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of `dim` (with `dim > 0`).
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer is not a whole number of rows"
        );
        FeatureMatrix {
            rows: data.len() / dim,
            dim,
            data,
        }
    }

    /// Number of clips (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Feature vector of clip `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= rows()`.
    pub fn row(&self, index: usize) -> &[f32] {
        assert!(
            index < self.rows,
            "row {index} out of range ({} rows)",
            self.rows
        );
        &self.data[index * self.dim..(index + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Iterator over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Gathers a sub-matrix of the given row indices (in order).
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            rows: indices.len(),
            dim: self.dim,
            data,
        }
    }

    /// Per-column mean and standard deviation, for standardisation.
    /// Columns with zero variance report a standard deviation of 1 so that
    /// standardising them is a no-op shift.
    pub fn column_stats(&self) -> (Vec<f32>, Vec<f32>) {
        let mut mean = vec![0.0f64; self.dim];
        for row in self.iter() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; self.dim];
        for row in self.iter() {
            for ((s, &v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v as f64 - m).powi(2);
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&s| {
                let sd = (s / n).sqrt();
                if sd > 1e-12 {
                    sd as f32
                } else {
                    1.0
                }
            })
            .collect();
        (mean.into_iter().map(|m| m as f32).collect(), std)
    }

    /// Returns a standardised copy: each column shifted by `mean` and scaled
    /// by `1 / std`.
    ///
    /// # Panics
    ///
    /// Panics when the statistics vectors do not match the dimension.
    pub fn standardized(&self, mean: &[f32], std: &[f32]) -> FeatureMatrix {
        assert_eq!(mean.len(), self.dim, "mean length mismatch");
        assert_eq!(std.len(), self.dim, "std length mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.iter() {
            for ((&v, &m), &s) in row.iter().zip(mean).zip(std) {
                data.push((v - m) / s);
            }
        }
        FeatureMatrix {
            rows: self.rows,
            dim: self.dim,
            data,
        }
    }

    /// Returns a copy whose rows are scaled to unit Euclidean norm.
    /// Zero rows are left as zeros.
    pub fn l2_normalized(&self) -> FeatureMatrix {
        let mut data = Vec::with_capacity(self.data.len());
        for row in self.iter() {
            let norm = row.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
            if norm > 1e-12 {
                data.extend(row.iter().map(|&v| (v as f64 / norm) as f32));
            } else {
                data.extend_from_slice(row);
            }
        }
        FeatureMatrix {
            rows: self.rows,
            dim: self.dim,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix::from_rows(vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap()
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(
            err,
            FeatureError::RaggedRows {
                expected: 1,
                found: 2
            }
        ));
    }

    #[test]
    fn row_access() {
        let m = matrix();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(2), &[3.0, 30.0]);
    }

    #[test]
    fn gather_reorders() {
        let m = matrix().gather(&[3, 0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[4.0, 40.0]);
        assert_eq!(m.row(1), &[1.0, 10.0]);
    }

    #[test]
    fn standardize_centers_columns() {
        let m = matrix();
        let (mean, std) = m.column_stats();
        let s = m.standardized(&mean, &std);
        // Column means of the standardized matrix are ~0, stds ~1.
        let (m2, s2) = s.column_stats();
        for v in m2 {
            assert!(v.abs() < 1e-6);
        }
        for v in s2 {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_column_standardizes_to_zero() {
        let m = FeatureMatrix::from_rows(vec![vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let (mean, std) = m.column_stats();
        let s = m.standardized(&mean, &std);
        assert_eq!(s.row(0)[0], 0.0);
        assert_eq!(s.row(1)[0], 0.0);
    }

    #[test]
    fn l2_normalize_gives_unit_rows() {
        let m = matrix().l2_normalized();
        for row in m.iter() {
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize_keeps_zero_rows() {
        let m = FeatureMatrix::from_rows(vec![vec![0.0, 0.0]])
            .unwrap()
            .l2_normalized();
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn from_flat_round_trips() {
        let m = FeatureMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_of_iterator_output() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0f32], vec![2.0]];
        let m = FeatureMatrix::from_rows(rows).unwrap();
        assert_eq!(m.rows(), 2);
    }

    proptest! {
        #[test]
        fn prop_l2_rows_bounded(rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 4), 1..20,
        )) {
            let m = FeatureMatrix::from_rows(rows).unwrap().l2_normalized();
            for row in m.iter() {
                let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                prop_assert!(norm < 1.0 + 1e-4);
            }
        }
    }
}
