use hotspot_geom::Raster;

/// Default run-length histogram bin edges (inclusive upper bounds, in
/// pixels). Chosen roughly logarithmic so that sub-resolution, marginal and
/// comfortable feature sizes land in distinct bins at the workspace's raster
/// pitches.
pub const DEFAULT_RUN_BINS: [usize; 12] = [1, 2, 3, 4, 6, 8, 11, 16, 22, 32, 45, 64];

/// Translation-invariant run-length histogram features of a clip raster.
///
/// The raster is thresholded at `threshold`; each scanline (both horizontal
/// and vertical) is decomposed into maximal runs of metal (1s) and space
/// (0s), and run lengths are binned into `bins` (an extra overflow bin
/// catches longer runs). Runs touching a scanline boundary are *censored*
/// (skipped): a wire cut by the clip border has an unknown true width, and
/// counting it would alias wide safe wires into the narrow defect bins.
/// The output concatenates four histograms — horizontal metal, horizontal
/// space, vertical metal, vertical space — each normalised to sum to 1
/// (all-zero histograms stay zero). Interior metal runs are exactly wire
/// widths and interior space runs exactly spacings along that direction.
///
/// Wire widths and spacings are exactly what lithographic printability
/// depends on, so these features give a classifier a translation-invariant
/// view of the clip that block-DCT features (which are location-sensitive)
/// do not provide. Density/geometry histogram features of this kind are
/// standard in the machine-learning hotspot literature.
///
/// # Panics
///
/// Panics when `bins` is empty or not strictly increasing.
///
/// ```
/// use hotspot_geom::{Raster, Rect};
/// use hotspot_features::{run_length_histogram, DEFAULT_RUN_BINS};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut raster = Raster::zeros(Rect::new(0, 0, 100, 100)?, 10)?;
/// raster.fill_rect(&Rect::new(0, 40, 100, 60)?, 1.0);
/// let h = run_length_histogram(&raster, 0.5, &DEFAULT_RUN_BINS);
/// assert_eq!(h.len(), 4 * (DEFAULT_RUN_BINS.len() + 1));
/// # Ok(())
/// # }
/// ```
pub fn run_length_histogram(raster: &Raster, threshold: f32, bins: &[usize]) -> Vec<f32> {
    assert!(!bins.is_empty(), "bins must not be empty");
    assert!(
        bins.windows(2).all(|w| w[0] < w[1]),
        "bins must be strictly increasing"
    );
    let (w, h) = (raster.width(), raster.height());
    let bits: Vec<bool> = raster.pixels().iter().map(|&v| v >= threshold).collect();
    let n_bins = bins.len() + 1;
    let mut histograms = vec![0.0f32; 4 * n_bins];

    let bin_of = |len: usize| -> usize {
        bins.iter()
            .position(|&edge| len <= edge)
            .unwrap_or(bins.len())
    };
    let mut record = |offset: usize, value: bool, len: usize| {
        if len == 0 {
            return;
        }
        let base = offset + if value { 0 } else { n_bins };
        histograms[base + bin_of(len)] += 1.0;
    };

    // Horizontal scanlines: runs starting at column 0 or ending at the last
    // column are censored.
    for row in 0..h {
        let mut run_value = bits[row * w];
        let mut run_len = 1usize;
        let mut interior_start = false;
        for col in 1..w {
            let v = bits[row * w + col];
            if v == run_value {
                run_len += 1;
            } else {
                if interior_start {
                    record(0, run_value, run_len);
                }
                run_value = v;
                run_len = 1;
                interior_start = true;
            }
        }
    }
    // Vertical scanlines: runs touching row 0 or the last row are censored.
    for col in 0..w {
        let mut run_value = bits[col];
        let mut run_len = 1usize;
        let mut interior_start = false;
        for row in 1..h {
            let v = bits[row * w + col];
            if v == run_value {
                run_len += 1;
            } else {
                if interior_start {
                    record(2 * n_bins, run_value, run_len);
                }
                run_value = v;
                run_len = 1;
                interior_start = true;
            }
        }
    }

    // Normalise each of the four histograms independently.
    for quarter in histograms.chunks_mut(n_bins) {
        let total: f32 = quarter.iter().sum();
        if total > 0.0 {
            for v in quarter {
                *v /= total;
            }
        }
    }
    histograms
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::Rect;

    fn raster_with(rects: &[Rect]) -> Raster {
        let mut r = Raster::zeros(Rect::new(0, 0, 200, 200).unwrap(), 10).unwrap();
        for rect in rects {
            r.fill_rect(rect, 1.0);
        }
        r
    }

    #[test]
    fn output_length_is_four_quarters() {
        let h = run_length_histogram(&raster_with(&[]), 0.5, &DEFAULT_RUN_BINS);
        assert_eq!(h.len(), 4 * 13);
    }

    #[test]
    fn empty_raster_has_no_interior_runs() {
        // Every run of an empty raster touches the border, so all four
        // histograms stay zero (censored).
        let h = run_length_histogram(&raster_with(&[]), 0.5, &DEFAULT_RUN_BINS);
        assert!(h.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn border_cut_wire_is_censored() {
        // A wire crossing the bottom border contributes no vertical metal
        // runs — its true width is unknown.
        let h = run_length_histogram(
            &raster_with(&[Rect::new(0, 0, 200, 30).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let n = DEFAULT_RUN_BINS.len() + 1;
        assert!(h[2 * n..3 * n].iter().all(|&v| v == 0.0), "{h:?}");
    }

    #[test]
    fn wire_width_lands_in_expected_bin() {
        // A 30 nm (3 px) horizontal wire: vertical scanlines see 3-long
        // metal runs.
        let h = run_length_histogram(
            &raster_with(&[Rect::new(0, 100, 200, 130).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let n = DEFAULT_RUN_BINS.len() + 1;
        let v_metal = &h[2 * n..3 * n];
        assert!(v_metal[2] > 0.99, "{v_metal:?}"); // bin for len 3
    }

    #[test]
    fn translation_invariance() {
        let a = run_length_histogram(
            &raster_with(&[Rect::new(0, 40, 200, 70).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let b = run_length_histogram(
            &raster_with(&[Rect::new(0, 120, 200, 150).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn narrow_and_wide_wires_differ() {
        let narrow = run_length_histogram(
            &raster_with(&[Rect::new(0, 100, 200, 120).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let wide = run_length_histogram(
            &raster_with(&[Rect::new(0, 80, 200, 160).unwrap()]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let dist: f32 = narrow.iter().zip(&wide).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 0.5, "histograms too similar: {dist}");
    }

    #[test]
    fn gap_length_recorded_in_space_histogram() {
        // Two wires with a 2 px slot: vertical space runs of length 2 exist.
        let h = run_length_histogram(
            &raster_with(&[
                Rect::new(0, 40, 200, 100).unwrap(),
                Rect::new(0, 120, 200, 180).unwrap(),
            ]),
            0.5,
            &DEFAULT_RUN_BINS,
        );
        let n = DEFAULT_RUN_BINS.len() + 1;
        let v_space = &h[3 * n..4 * n];
        assert!(v_space[1] > 0.0, "{v_space:?}"); // len-2 runs present
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bins() {
        let _ = run_length_histogram(&raster_with(&[]), 0.5, &[3, 2]);
    }
}
