/// Returns the zig-zag traversal order of an `n × n` coefficient block as
/// row-major indices, lowest spatial frequency first.
///
/// This is the JPEG scan order: `(0,0), (0,1), (1,0), (2,0), (1,1), …`.
/// Truncating a coefficient vector in this order keeps the most informative
/// low-frequency content.
///
/// ```
/// use hotspot_features::zigzag_order;
/// let order = zigzag_order(3);
/// assert_eq!(order, vec![0, 1, 3, 6, 4, 2, 5, 7, 8]);
/// ```
pub fn zigzag_order(n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n * n);
    for s in 0..(2 * n).saturating_sub(1) {
        if s % 2 == 0 {
            // Even anti-diagonal: walk up-right (row decreasing).
            let r0 = s.min(n - 1);
            let mut r = r0 as isize;
            let mut c = (s - r0) as isize;
            while r >= 0 && (c as usize) < n {
                order.push(r as usize * n + c as usize);
                r -= 1;
                c += 1;
            }
        } else {
            // Odd anti-diagonal: walk down-left (row increasing).
            let c0 = s.min(n - 1);
            let mut c = c0 as isize;
            let mut r = (s - c0) as isize;
            while c >= 0 && (r as usize) < n {
                order.push(r as usize * n + c as usize);
                r += 1;
                c -= 1;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn order_for_two() {
        assert_eq!(zigzag_order(2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_for_four_starts_low_frequency() {
        let order = zigzag_order(4);
        assert_eq!(&order[..6], &[0, 1, 4, 8, 5, 2]);
        assert_eq!(*order.last().unwrap(), 15);
    }

    #[test]
    fn single_element() {
        assert_eq!(zigzag_order(1), vec![0]);
    }

    proptest! {
        #[test]
        fn prop_is_permutation(n in 1usize..12) {
            let mut order = zigzag_order(n);
            prop_assert_eq!(order.len(), n * n);
            order.sort_unstable();
            for (i, &v) in order.iter().enumerate() {
                prop_assert_eq!(v, i);
            }
        }

        #[test]
        fn prop_diagonal_sums_nondecreasing(n in 1usize..12) {
            // The anti-diagonal index (r + c) never decreases along the scan.
            let order = zigzag_order(n);
            let mut last = 0;
            for &idx in &order {
                let s = idx / n + idx % n;
                prop_assert!(s >= last);
                prop_assert!(s >= last || s + 1 == last + 1);
                last = last.max(s);
            }
        }
    }
}
