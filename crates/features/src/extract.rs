use crate::{zigzag_order, Dct2d, FeatureError};
use hotspot_geom::Raster;

/// Block-DCT feature extractor for layout clip rasters.
///
/// Configured by three numbers: the square working resolution the raster is
/// resampled to, the DCT block edge, and how many zig-zag coefficients are
/// kept per block. The output dimension is
/// `(raster/block)² × coefficients`.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    raster_edge: usize,
    block_edge: usize,
    coeffs_per_block: usize,
    dct: Dct2d,
    zigzag: Vec<usize>,
}

impl FeatureExtractor {
    /// Creates an extractor resampling clips to `raster_edge²` pixels, tiled
    /// into `block_edge²` blocks, keeping `coeffs_per_block` DCT
    /// coefficients per block.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::BadBlockTiling`] when `raster_edge` is not a
    /// positive multiple of `block_edge`, and
    /// [`FeatureError::TooManyCoefficients`] when `coeffs_per_block`
    /// exceeds `block_edge²` or is zero.
    pub fn new(
        raster_edge: usize,
        block_edge: usize,
        coeffs_per_block: usize,
    ) -> Result<Self, FeatureError> {
        if block_edge == 0 || raster_edge == 0 || !raster_edge.is_multiple_of(block_edge) {
            return Err(FeatureError::BadBlockTiling {
                raster: raster_edge,
                block: block_edge,
            });
        }
        if coeffs_per_block == 0 || coeffs_per_block > block_edge * block_edge {
            return Err(FeatureError::TooManyCoefficients {
                requested: coeffs_per_block,
                available: block_edge * block_edge,
            });
        }
        let zigzag = zigzag_order(block_edge)
            .into_iter()
            .take(coeffs_per_block)
            .collect();
        Ok(FeatureExtractor {
            raster_edge,
            block_edge,
            coeffs_per_block,
            dct: Dct2d::new(block_edge),
            zigzag,
        })
    }

    /// The standard configuration used throughout the workspace: clips at
    /// 32 × 32 working resolution, 8 × 8 blocks, 6 coefficients each —
    /// a 96-dimensional feature vector.
    pub fn standard() -> Self {
        // 32 is a positive multiple of 8 and 6 ≤ 8², so these fields satisfy
        // every invariant the checked constructor enforces.
        FeatureExtractor {
            raster_edge: 32,
            block_edge: 8,
            coeffs_per_block: 6,
            dct: Dct2d::new(8),
            zigzag: zigzag_order(8).into_iter().take(6).collect(),
        }
    }

    /// Output feature dimension.
    pub fn dim(&self) -> usize {
        let blocks = self.raster_edge / self.block_edge;
        blocks * blocks * self.coeffs_per_block
    }

    /// Working resolution the raster is resampled to.
    pub fn raster_edge(&self) -> usize {
        self.raster_edge
    }

    /// DCT block edge length.
    pub fn block_edge(&self) -> usize {
        self.block_edge
    }

    /// Coefficients kept per block.
    pub fn coeffs_per_block(&self) -> usize {
        self.coeffs_per_block
    }

    /// Extracts the feature vector of one clip raster.
    pub fn extract(&self, raster: &Raster) -> Vec<f32> {
        let working = if raster.width() == self.raster_edge && raster.height() == self.raster_edge {
            raster.clone()
        } else {
            raster.resampled(self.raster_edge, self.raster_edge)
        };
        let pixels = working.pixels();
        let blocks = self.raster_edge / self.block_edge;
        let b = self.block_edge;
        let mut features = Vec::with_capacity(self.dim());
        let mut block_buf = vec![0.0f32; b * b];
        for br in 0..blocks {
            for bc in 0..blocks {
                for r in 0..b {
                    let src = (br * b + r) * self.raster_edge + bc * b;
                    block_buf[r * b..(r + 1) * b].copy_from_slice(&pixels[src..src + b]);
                }
                let coeffs = self.dct.transform(&block_buf);
                features.extend(self.zigzag.iter().map(|&i| coeffs[i]));
            }
        }
        features
    }

    /// Extracts a coarse density map (mean coverage per block) — the
    /// low-dimensional representation used by the GMM query-pool model.
    pub fn density_features(&self, raster: &Raster) -> Vec<f32> {
        let blocks = self.raster_edge / self.block_edge;
        let small = raster.resampled(blocks, blocks);
        small.pixels().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Raster, Rect};

    fn raster_with_left_half() -> Raster {
        let mut r = Raster::zeros(Rect::new(0, 0, 1280, 1280).unwrap(), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 640, 1280).unwrap(), 1.0);
        r
    }

    #[test]
    fn rejects_bad_tiling() {
        assert!(matches!(
            FeatureExtractor::new(30, 8, 6),
            Err(FeatureError::BadBlockTiling { .. })
        ));
        assert!(FeatureExtractor::new(0, 8, 6).is_err());
        assert!(FeatureExtractor::new(32, 0, 6).is_err());
    }

    #[test]
    fn rejects_too_many_coefficients() {
        assert!(matches!(
            FeatureExtractor::new(32, 8, 65),
            Err(FeatureError::TooManyCoefficients { .. })
        ));
        assert!(FeatureExtractor::new(32, 8, 0).is_err());
    }

    #[test]
    fn dim_matches_configuration() {
        let e = FeatureExtractor::new(32, 8, 6).unwrap();
        assert_eq!(e.dim(), 16 * 6);
        assert_eq!(e.extract(&raster_with_left_half()).len(), e.dim());
    }

    #[test]
    fn standard_is_96_dimensional() {
        assert_eq!(FeatureExtractor::standard().dim(), 96);
    }

    #[test]
    fn empty_raster_gives_zero_features() {
        let e = FeatureExtractor::standard();
        let raster = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), 10).unwrap();
        assert!(e.extract(&raster).iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn features_distinguish_patterns() {
        let e = FeatureExtractor::standard();
        let left = e.extract(&raster_with_left_half());
        let mut full = Raster::zeros(Rect::new(0, 0, 1280, 1280).unwrap(), 10).unwrap();
        full.fill_rect(&Rect::new(0, 0, 1280, 1280).unwrap(), 1.0);
        let full_f = e.extract(&full);
        let dist: f32 = left.iter().zip(&full_f).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(dist > 0.1);
    }

    #[test]
    fn translation_changes_features() {
        // DCT features are location-sensitive within the clip, as required
        // to tell a core defect from a margin defect.
        let e = FeatureExtractor::standard();
        let mut a = Raster::zeros(Rect::new(0, 0, 1280, 1280).unwrap(), 10).unwrap();
        a.fill_rect(&Rect::new(0, 0, 1280, 200).unwrap(), 1.0);
        let mut b = Raster::zeros(Rect::new(0, 0, 1280, 1280).unwrap(), 10).unwrap();
        b.fill_rect(&Rect::new(0, 1080, 1280, 1280).unwrap(), 1.0);
        let fa = e.extract(&a);
        let fb = e.extract(&b);
        let dist: f32 = fa.iter().zip(&fb).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist > 0.1);
    }

    #[test]
    fn density_features_have_block_count_dims() {
        let e = FeatureExtractor::new(32, 8, 6).unwrap();
        let d = e.density_features(&raster_with_left_half());
        assert_eq!(d.len(), 16);
        let mean: f32 = d.iter().sum::<f32>() / d.len() as f32;
        assert!((mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn extract_accepts_presized_raster() {
        let e = FeatureExtractor::new(32, 8, 6).unwrap();
        let r = Raster::zeros(Rect::new(0, 0, 32, 32).unwrap(), 1).unwrap();
        assert_eq!(e.extract(&r).len(), e.dim());
    }
}
