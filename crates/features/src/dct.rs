/// An orthonormal 2-D type-II discrete cosine transform of fixed size.
///
/// The basis is precomputed at construction, so repeated transforms over
/// thousands of clip blocks are a pair of small matrix products. The
/// orthonormal scaling makes [`Dct2d::inverse`] the exact adjoint, giving a
/// lossless round-trip (up to floating-point error).
///
/// ```
/// use hotspot_features::Dct2d;
/// let dct = Dct2d::new(8);
/// let block = vec![0.5f32; 64];
/// let coeffs = dct.transform(&block);
/// // A constant block has all its energy in the DC coefficient.
/// assert!((coeffs[0] - 0.5 * 8.0).abs() < 1e-5);
/// assert!(coeffs[1].abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct Dct2d {
    n: usize,
    /// Row-major basis: `basis[k * n + i] = c(k) * cos(π (2i+1) k / 2n)`.
    basis: Vec<f32>,
}

impl Dct2d {
    /// Builds the transform for `n × n` blocks.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DCT block size must be positive");
        let mut basis = vec![0.0f32; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let c = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                let angle = std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64;
                basis[k * n + i] = (c * angle.cos()) as f32;
            }
        }
        Dct2d { n, basis }
    }

    /// Block edge length.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Forward 2-D DCT of a row-major `n × n` block.
    ///
    /// # Panics
    ///
    /// Panics when `block.len() != n * n`.
    pub fn transform(&self, block: &[f32]) -> Vec<f32> {
        let n = self.n;
        assert_eq!(block.len(), n * n, "block size mismatch");
        record_dct_kernel(n);
        // rows: tmp = block * Bᵀ  (transform along x)
        let mut tmp = vec![0.0f32; n * n];
        for r in 0..n {
            for k in 0..n {
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += block[r * n + i] * self.basis[k * n + i];
                }
                tmp[r * n + k] = acc;
            }
        }
        // cols: out = B * tmp (transform along y)
        let mut out = vec![0.0f32; n * n];
        for k in 0..n {
            for c in 0..n {
                let mut acc = 0.0f32;
                for r in 0..n {
                    acc += self.basis[k * n + r] * tmp[r * n + c];
                }
                out[k * n + c] = acc;
            }
        }
        out
    }

    /// Inverse 2-D DCT (the adjoint of [`Dct2d::transform`]).
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != n * n`.
    pub fn inverse(&self, coeffs: &[f32]) -> Vec<f32> {
        let n = self.n;
        assert_eq!(coeffs.len(), n * n, "coefficient size mismatch");
        // rows: tmp = coeffs * B
        let mut tmp = vec![0.0f32; n * n];
        for r in 0..n {
            for i in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += coeffs[r * n + k] * self.basis[k * n + i];
                }
                tmp[r * n + i] = acc;
            }
        }
        // cols: out = Bᵀ * tmp
        let mut out = vec![0.0f32; n * n];
        for i in 0..n {
            for c in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += self.basis[k * n + i] * tmp[k * n + c];
                }
                out[i * n + c] = acc;
            }
        }
        out
    }
}

/// Books one forward block transform into the `kernel.dct.*` performance
/// counters (ROADMAP item 1 hot loop): two n³ matrix passes of one
/// multiply–add each, n² coefficients out, and block + basis + temporary +
/// output traffic. One counter update per block.
fn record_dct_kernel(n: usize) {
    use hotspot_telemetry::{counter, names};
    let n = n as u64;
    counter(names::KERNEL_DCT_CALLS).incr();
    counter(names::KERNEL_DCT_ELEMENTS).add(n * n);
    counter(names::KERNEL_DCT_FLOPS).add(4 * n * n * n);
    counter(names::KERNEL_DCT_BYTES).add(4 * 4 * n * n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_of_constant_block() {
        let dct = Dct2d::new(4);
        let coeffs = dct.transform(&[1.0f32; 16]);
        assert!((coeffs[0] - 4.0).abs() < 1e-5);
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-5);
        }
    }

    #[test]
    fn transform_is_linear() {
        let dct = Dct2d::new(4);
        let a: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ta = dct.transform(&a);
        let tb = dct.transform(&b);
        let tsum = dct.transform(&sum);
        for i in 0..16 {
            assert!((tsum[i] - ta[i] - tb[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let dct = Dct2d::new(8);
        let block: Vec<f32> = (0..64).map(|i| ((i * 37 % 13) as f32) / 13.0).collect();
        let coeffs = dct.transform(&block);
        let e_in: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_out: f64 = coeffs.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!((e_in - e_out).abs() < 1e-3, "{e_in} vs {e_out}");
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn wrong_size_panics() {
        let _ = Dct2d::new(8).transform(&[0.0; 10]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(block in proptest::collection::vec(-1.0f32..1.0, 64)) {
            let dct = Dct2d::new(8);
            let back = dct.inverse(&dct.transform(&block));
            for (a, b) in block.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_parseval(block in proptest::collection::vec(-1.0f32..1.0, 36)) {
            let dct = Dct2d::new(6);
            let coeffs = dct.transform(&block);
            let e_in: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
            let e_out: f64 = coeffs.iter().map(|&v| (v as f64).powi(2)).sum();
            prop_assert!((e_in - e_out).abs() < 1e-3);
        }
    }
}
