use crate::{Coord, GeomError, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle with integer nanometre coordinates.
///
/// The rectangle spans the half-open region `[x0, x1) × [y0, y1)`, which makes
/// abutting rectangles non-overlapping and keeps area arithmetic exact.
///
/// ```
/// use hotspot_geom::Rect;
/// # fn main() -> Result<(), hotspot_geom::GeomError> {
/// let r = Rect::new(0, 0, 100, 40)?;
/// assert_eq!(r.width(), 100);
/// assert_eq!(r.area(), 4000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rect {
    x0: Coord,
    y0: Coord,
    x1: Coord,
    y1: Coord,
}

impl Rect {
    /// Creates a rectangle spanning `[x0, x1) × [y0, y1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvertedRect`] if `x1 < x0` or `y1 < y0`.
    /// Degenerate (zero-width or zero-height) rectangles are allowed; they
    /// have zero area and intersect nothing.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Result<Self, GeomError> {
        if x1 < x0 || y1 < y0 {
            return Err(GeomError::InvertedRect {
                coords: (x0, y0, x1, y1),
            });
        }
        Ok(Rect { x0, y0, x1, y1 })
    }

    /// Creates a rectangle from its lower-left corner and a size.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvertedRect`] if `width` or `height` is negative.
    pub fn from_origin_size(origin: Point, width: Coord, height: Coord) -> Result<Self, GeomError> {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// The rectangle spanning two corner points in any order. Infallible:
    /// the extent is normalised, so `spanning(a, b) == spanning(b, a)`.
    pub fn spanning(a: Point, b: Point) -> Self {
        Rect {
            x0: a.x.min(b.x),
            y0: a.y.min(b.y),
            x1: a.x.max(b.x),
            y1: a.y.max(b.y),
        }
    }

    /// Left edge.
    pub fn x0(&self) -> Coord {
        self.x0
    }

    /// Bottom edge.
    pub fn y0(&self) -> Coord {
        self.y0
    }

    /// Right edge (exclusive).
    pub fn x1(&self) -> Coord {
        self.x1
    }

    /// Top edge (exclusive).
    pub fn y1(&self) -> Coord {
        self.y1
    }

    /// Width in nanometres.
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Height in nanometres.
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Area in square nanometres.
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Whether the rectangle encloses zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Centre point, rounded towards negative infinity.
    pub fn center(&self) -> Point {
        Point::new(self.x0 + self.width() / 2, self.y0 + self.height() / 2)
    }

    /// Whether `p` lies inside the half-open extent.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// Whether the two rectangles share interior area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0.max(other.x0) < self.x1.min(other.x1)
            && self.y0.max(other.y0) < self.y1.min(other.y1)
    }

    /// Intersection of two rectangles, or `None` when they share no area.
    ///
    /// ```
    /// use hotspot_geom::Rect;
    /// # fn main() -> Result<(), hotspot_geom::GeomError> {
    /// let a = Rect::new(0, 0, 10, 10)?;
    /// let b = Rect::new(5, 5, 20, 20)?;
    /// assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)?));
    /// # Ok(())
    /// # }
    /// ```
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// The smallest rectangle containing both operands.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Rectangle translated by `delta`.
    pub fn translated(&self, delta: Point) -> Rect {
        Rect {
            x0: self.x0 + delta.x,
            y0: self.y0 + delta.y,
            x1: self.x1 + delta.x,
            y1: self.y1 + delta.y,
        }
    }

    /// Rectangle grown by `margin` on every side (shrunk when negative).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvertedRect`] if a negative margin inverts the
    /// extent.
    pub fn inflated(&self, margin: Coord) -> Result<Rect, GeomError> {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Minimum edge-to-edge spacing to `other` along the axes, or zero when
    /// the rectangles overlap or abut.
    ///
    /// This is the Manhattan gap used by design-rule-style spacing checks: the
    /// larger of the x-gap and y-gap is irrelevant, the spacing is the L2-free
    /// max of per-axis gaps combined as `max(gap_x, gap_y)` when separated on
    /// one axis only, and the Chebyshev-style corner distance otherwise.
    pub fn spacing(&self, other: &Rect) -> Coord {
        let gap_x = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let gap_y = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        gap_x.max(gap_y)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) x [{}, {})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(x0, y0, x1, y1).expect("valid rect")
    }

    #[test]
    fn spanning_normalises_corner_order() {
        let a = Point::new(10, -5);
        let b = Point::new(-3, 20);
        let r = Rect::spanning(a, b);
        assert_eq!(r, rect(-3, -5, 10, 20));
        assert_eq!(Rect::spanning(b, a), r);
        assert!(Rect::spanning(a, a).is_empty());
    }

    #[test]
    fn rejects_inverted() {
        assert!(Rect::new(10, 0, 0, 10).is_err());
        assert!(Rect::new(0, 10, 10, 0).is_err());
    }

    #[test]
    fn degenerate_rect_is_empty_and_disjoint() {
        let line = rect(0, 0, 0, 100);
        assert!(line.is_empty());
        assert!(!line.intersects(&rect(-5, -5, 5, 5)));
        assert_eq!(line.area(), 0);
    }

    #[test]
    fn abutting_rects_do_not_intersect() {
        let a = rect(0, 0, 10, 10);
        let b = rect(10, 0, 20, 10);
        assert!(!a.intersects(&b));
        assert_eq!(a.spacing(&b), 0);
    }

    #[test]
    fn intersection_matches_manual() {
        let a = rect(0, 0, 10, 10);
        let b = rect(5, -5, 20, 5);
        assert_eq!(a.intersection(&b), Some(rect(5, 0, 10, 5)));
        assert_eq!(b.intersection(&a), Some(rect(5, 0, 10, 5)));
    }

    #[test]
    fn spacing_on_x_axis() {
        let a = rect(0, 0, 10, 10);
        let b = rect(25, 0, 30, 10);
        assert_eq!(a.spacing(&b), 15);
        assert_eq!(b.spacing(&a), 15);
    }

    #[test]
    fn spacing_diagonal_is_chebyshev() {
        let a = rect(0, 0, 10, 10);
        let b = rect(14, 22, 20, 30);
        assert_eq!(a.spacing(&b), 12);
    }

    #[test]
    fn contains_rect_is_reflexive() {
        let a = rect(3, 4, 90, 80);
        assert!(a.contains_rect(&a));
    }

    #[test]
    fn inflate_then_deflate_roundtrips() {
        let a = rect(0, 0, 10, 10);
        let grown = a.inflated(5).unwrap();
        assert_eq!(grown.inflated(-5).unwrap(), a);
        assert!(a.inflated(-6).is_err());
    }

    proptest! {
        #[test]
        fn prop_intersection_within_both(
            ax0 in -500i64..500, ay0 in -500i64..500, aw in 0i64..300, ah in 0i64..300,
            bx0 in -500i64..500, by0 in -500i64..500, bw in 0i64..300, bh in 0i64..300,
        ) {
            let a = rect(ax0, ay0, ax0 + aw, ay0 + ah);
            let b = rect(bx0, by0, bx0 + bw, by0 + bh);
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
                prop_assert!(i.area() <= a.area());
                prop_assert!(i.area() <= b.area());
            } else {
                prop_assert!(!a.intersects(&b));
            }
        }

        #[test]
        fn prop_union_bbox_contains_both(
            ax0 in -500i64..500, ay0 in -500i64..500, aw in 0i64..300, ah in 0i64..300,
            bx0 in -500i64..500, by0 in -500i64..500, bw in 0i64..300, bh in 0i64..300,
        ) {
            let a = rect(ax0, ay0, ax0 + aw, ay0 + ah);
            let b = rect(bx0, by0, bx0 + bw, by0 + bh);
            let u = a.union_bbox(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn prop_spacing_zero_iff_touch_or_overlap(
            ax0 in -200i64..200, ay0 in -200i64..200, aw in 1i64..100, ah in 1i64..100,
            bx0 in -200i64..200, by0 in -200i64..200, bw in 1i64..100, bh in 1i64..100,
        ) {
            let a = rect(ax0, ay0, ax0 + aw, ay0 + ah);
            let b = rect(bx0, by0, bx0 + bw, by0 + bh);
            let touching = a.inflated(1).unwrap().intersects(&b);
            prop_assert_eq!(a.spacing(&b) == 0, touching);
        }

        #[test]
        fn prop_translate_preserves_size(
            x0 in -500i64..500, y0 in -500i64..500, w in 0i64..300, h in 0i64..300,
            dx in -1000i64..1000, dy in -1000i64..1000,
        ) {
            let a = rect(x0, y0, x0 + w, y0 + h);
            let t = a.translated(crate::Point::new(dx, dy));
            prop_assert_eq!(t.width(), a.width());
            prop_assert_eq!(t.height(), a.height());
            prop_assert_eq!(t.area(), a.area());
        }
    }
}
