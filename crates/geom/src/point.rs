use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in integer nanometre coordinates.
///
/// ```
/// use hotspot_geom::Point;
/// let p = Point::new(10, 20) + Point::new(-3, 5);
/// assert_eq!(p, Point::new(7, 25));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in nanometres.
    pub x: Coord,
    /// Vertical coordinate in nanometres.
    pub y: Coord,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use hotspot_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(5, -7);
        let b = Point::new(-2, 11);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(1, 2);
        let b = Point::new(-9, 40);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
    }

    #[test]
    fn display_formats_pair() {
        assert_eq!(Point::new(3, 4).to_string(), "(3, 4)");
    }

    #[test]
    fn from_tuple() {
        assert_eq!(Point::from((8, 9)), Point::new(8, 9));
    }
}
