use crate::{Coord, GeomError, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A layout clip window with a centred core region.
///
/// Hotspot benchmarks cut a full-chip layout into fixed-size *clips*. A defect
/// only counts as a hotspot for a clip when it falls inside the clip's *core*
/// (Definition 1 of the paper); the surroundings provide optical context.
///
/// ```
/// use hotspot_geom::{ClipWindow, Rect};
/// # fn main() -> Result<(), hotspot_geom::GeomError> {
/// let clip = ClipWindow::new(Rect::new(0, 0, 1200, 1200)?, 600)?;
/// assert_eq!(clip.core(), Rect::new(300, 300, 900, 900)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClipWindow {
    window: Rect,
    core: Rect,
}

impl ClipWindow {
    /// Creates a clip with a centred square core of edge length `core_edge`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::CoreTooLarge`] when the core does not fit inside
    /// the window, and [`GeomError::InvertedRect`] when `core_edge` is
    /// negative.
    pub fn new(window: Rect, core_edge: Coord) -> Result<Self, GeomError> {
        if core_edge < 0 {
            return Err(GeomError::InvertedRect {
                coords: (0, 0, core_edge, core_edge),
            });
        }
        if core_edge > window.width() || core_edge > window.height() {
            return Err(GeomError::CoreTooLarge {
                core: core_edge,
                window: (window.width(), window.height()),
            });
        }
        let cx0 = window.x0() + (window.width() - core_edge) / 2;
        let cy0 = window.y0() + (window.height() - core_edge) / 2;
        let core = Rect::new(cx0, cy0, cx0 + core_edge, cy0 + core_edge)?;
        Ok(ClipWindow { window, core })
    }

    /// The full clip extent.
    pub fn window(&self) -> Rect {
        self.window
    }

    /// The centred core region in which defects count.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// Clip translated so its lower-left corner sits at the origin.
    pub fn normalized(&self) -> ClipWindow {
        let delta = crate::Point::new(-self.window.x0(), -self.window.y0());
        ClipWindow {
            window: self.window.translated(delta),
            core: self.core.translated(delta),
        }
    }
}

impl fmt::Display for ClipWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clip {} core {}", self.window, self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn core_is_centered() {
        let clip = ClipWindow::new(Rect::new(0, 0, 1000, 1000).unwrap(), 400).unwrap();
        assert_eq!(clip.core(), Rect::new(300, 300, 700, 700).unwrap());
    }

    #[test]
    fn rejects_oversized_core() {
        let w = Rect::new(0, 0, 100, 100).unwrap();
        assert!(matches!(
            ClipWindow::new(w, 200),
            Err(GeomError::CoreTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_negative_core() {
        let w = Rect::new(0, 0, 100, 100).unwrap();
        assert!(ClipWindow::new(w, -1).is_err());
    }

    #[test]
    fn zero_core_is_allowed() {
        let w = Rect::new(0, 0, 100, 100).unwrap();
        let clip = ClipWindow::new(w, 0).unwrap();
        assert!(clip.core().is_empty());
    }

    #[test]
    fn normalized_moves_to_origin() {
        let clip = ClipWindow::new(Rect::new(500, 700, 1700, 1900).unwrap(), 600).unwrap();
        let n = clip.normalized();
        assert_eq!(n.window().x0(), 0);
        assert_eq!(n.window().y0(), 0);
        assert_eq!(n.core().width(), clip.core().width());
    }

    proptest! {
        #[test]
        fn prop_core_always_inside_window(
            x0 in -1000i64..1000, y0 in -1000i64..1000,
            w in 1i64..2000, core in 0i64..2000,
        ) {
            let window = Rect::new(x0, y0, x0 + w, y0 + w).unwrap();
            match ClipWindow::new(window, core) {
                Ok(clip) => {
                    prop_assert!(window.contains_rect(&clip.core()));
                    prop_assert_eq!(clip.core().width(), core);
                }
                Err(_) => prop_assert!(core > w),
            }
        }
    }
}
