use crate::{Coord, GeomError, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectilinear (Manhattan) polygon, stored as its vertex loop.
///
/// Layout shapes beyond plain rectangles — L-shapes, U-shapes, comb
/// structures — are rectilinear polygons. This type validates the loop
/// (alternating horizontal/vertical edges, closed, non-degenerate) and
/// decomposes it into disjoint rectangles for rasterisation via
/// [`Polygon::to_rects`].
///
/// ```
/// use hotspot_geom::{Point, Polygon};
/// # fn main() -> Result<(), hotspot_geom::GeomError> {
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(40, 0),
///     Point::new(40, 10),
///     Point::new(10, 10),
///     Point::new(10, 30),
///     Point::new(0, 30),
/// ])?;
/// assert_eq!(poly.area(), 40 * 10 + 10 * 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Builds a polygon from a counter-clockwise or clockwise vertex loop
    /// (the closing edge back to the first vertex is implicit).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidPolygon`] when the loop has fewer than 4
    /// vertices, repeats a vertex consecutively, or has an edge that is
    /// neither horizontal nor vertical, or two consecutive edges along the
    /// same axis.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 4 || !vertices.len().is_multiple_of(2) {
            return Err(GeomError::InvalidPolygon {
                detail: format!(
                    "rectilinear polygon needs an even vertex count of at least 4, got {}",
                    vertices.len()
                ),
            });
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a == b {
                return Err(GeomError::InvalidPolygon {
                    detail: format!("repeated vertex {a} at position {i}"),
                });
            }
            let horizontal = a.y == b.y;
            let vertical = a.x == b.x;
            if !horizontal && !vertical {
                return Err(GeomError::InvalidPolygon {
                    detail: format!("edge {a} -> {b} is not axis-aligned"),
                });
            }
            let c = vertices[(i + 2) % n];
            let next_horizontal = b.y == c.y;
            if horizontal == next_horizontal {
                return Err(GeomError::InvalidPolygon {
                    detail: format!("consecutive collinear edges at vertex {b}"),
                });
            }
        }
        Ok(Polygon { vertices })
    }

    /// A rectangle as a polygon.
    pub fn from_rect(rect: &Rect) -> Self {
        Polygon {
            vertices: vec![
                Point::new(rect.x0(), rect.y0()),
                Point::new(rect.x1(), rect.y0()),
                Point::new(rect.x1(), rect.y1()),
                Point::new(rect.x0(), rect.y1()),
            ],
        }
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        // The constructor guarantees at least 4 vertices, so folding from
        // the first vertex covers the whole loop without any panicking path.
        let first = self.vertices[0];
        self.vertices
            .iter()
            .fold(Rect::spanning(first, first), |bbox, &p| {
                bbox.union_bbox(&Rect::spanning(p, p))
            })
    }

    /// Enclosed area (shoelace formula; orientation-independent).
    pub fn area(&self) -> i128 {
        let n = self.vertices.len();
        let mut twice: i128 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
        }
        twice.abs() / 2
    }

    /// Decomposes the polygon into disjoint rectangles by horizontal slab
    /// sweep: the y-coordinates of all vertices cut the shape into slabs,
    /// and within each slab the crossing vertical edges pair up into spans.
    ///
    /// The rectangles tile the interior exactly (their areas sum to
    /// [`Polygon::area`]) and do not overlap.
    pub fn to_rects(&self) -> Vec<Rect> {
        let mut ys: Vec<Coord> = self.vertices.iter().map(|p| p.y).collect();
        ys.sort_unstable();
        ys.dedup();
        let n = self.vertices.len();
        let mut rects = Vec::new();
        for slab in ys.windows(2) {
            let (y_lo, y_hi) = (slab[0], slab[1]);
            let mid = y_lo + (y_hi - y_lo) / 2;
            // Vertical edges crossing this slab, by x.
            let mut xs = Vec::new();
            for i in 0..n {
                let a = self.vertices[i];
                let b = self.vertices[(i + 1) % n];
                if a.x == b.x {
                    let (e_lo, e_hi) = (a.y.min(b.y), a.y.max(b.y));
                    if e_lo <= mid && mid < e_hi {
                        xs.push(a.x);
                    }
                }
            }
            xs.sort_unstable();
            // Even-odd pairing: spans between alternating crossings are
            // interior.
            for pair in xs.chunks_exact(2) {
                // xs is sorted and the slab is ordered, so spanning() is
                // already normalised — no fallible construction needed.
                rects.push(Rect::spanning(
                    Point::new(pair[0], y_lo),
                    Point::new(pair[1], y_hi),
                ));
            }
        }
        rects
    }

    /// Whether a point lies inside the polygon (even-odd rule on the
    /// half-open interior, consistent with [`Rect::contains`]).
    pub fn contains(&self, point: Point) -> bool {
        self.to_rects().iter().any(|r| r.contains(point))
    }

    /// Polygon translated by `delta`.
    pub fn translated(&self, delta: Point) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&v| v + delta).collect(),
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(40, 0),
            Point::new(40, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap()
    }

    fn u_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(50, 0),
            Point::new(50, 30),
            Point::new(40, 30),
            Point::new(40, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap()
    }

    #[test]
    fn rect_roundtrip() {
        let rect = Rect::new(5, 7, 20, 30).unwrap();
        let poly = Polygon::from_rect(&rect);
        assert_eq!(poly.area(), rect.area());
        assert_eq!(poly.bbox(), rect);
        let rects = poly.to_rects();
        assert_eq!(rects, vec![rect]);
    }

    #[test]
    fn l_shape_decomposes_exactly() {
        let poly = l_shape();
        let rects = poly.to_rects();
        let total: i128 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, poly.area());
        // Decomposed rectangles are pairwise disjoint.
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn u_shape_slab_has_two_spans() {
        let poly = u_shape();
        let rects = poly.to_rects();
        let total: i128 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, poly.area());
        // The upper slab (y 10..30) must split into the two prongs.
        let upper: Vec<&Rect> = rects.iter().filter(|r| r.y0() == 10).collect();
        assert_eq!(upper.len(), 2);
    }

    #[test]
    fn contains_respects_notch() {
        let poly = u_shape();
        assert!(poly.contains(Point::new(5, 20))); // left prong
        assert!(poly.contains(Point::new(45, 20))); // right prong
        assert!(!poly.contains(Point::new(25, 20))); // the notch
        assert!(poly.contains(Point::new(25, 5))); // the base
    }

    #[test]
    fn clockwise_loop_is_equivalent() {
        let ccw = l_shape();
        let mut reversed = ccw.vertices().to_vec();
        reversed.reverse();
        let cw = Polygon::new(reversed).unwrap();
        assert_eq!(cw.area(), ccw.area());
        let mut a = ccw.to_rects();
        let mut b = cw.to_rects();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_loops() {
        // Too few vertices.
        assert!(Polygon::new(vec![Point::new(0, 0), Point::new(1, 0)]).is_err());
        // Diagonal edge.
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 10),
            Point::new(10, 20),
            Point::new(0, 20),
        ])
        .is_err());
        // Repeated vertex.
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 10),
        ])
        .is_err());
        // Collinear consecutive edges.
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(10, 0),
            Point::new(10, 10),
            Point::new(5, 10),
            Point::new(0, 10),
        ])
        .is_err());
    }

    #[test]
    fn translation_moves_everything() {
        let poly = l_shape().translated(Point::new(100, -50));
        assert_eq!(poly.area(), l_shape().area());
        assert_eq!(poly.bbox().x0(), 100);
        assert_eq!(poly.bbox().y0(), -50);
    }

    #[test]
    fn display_lists_vertices() {
        let text = l_shape().to_string();
        assert!(text.starts_with("polygon[") && text.contains("(40, 10)"));
    }

    proptest! {
        #[test]
        fn prop_staircase_area_matches_decomposition(
            steps in proptest::collection::vec((1i64..20, 1i64..20), 1..6),
        ) {
            // Build a staircase polygon: rightward then upward per step,
            // closed back along the axes. Always a valid rectilinear loop.
            let mut vertices = vec![Point::new(0, 0)];
            // Bottom edge out to the full width.
            let width: i64 = steps.iter().map(|&(w, _)| w).sum();
            vertices.push(Point::new(width, 0));
            let mut x = width;
            let mut y = 0i64;
            for &(w, h) in steps.iter().rev() {
                y += h;
                vertices.push(Point::new(x, y));
                x -= w;
                vertices.push(Point::new(x, y));
            }
            let poly = Polygon::new(vertices).unwrap();
            let rects = poly.to_rects();
            let total: i128 = rects.iter().map(Rect::area).sum();
            prop_assert_eq!(total, poly.area());
            for (i, a) in rects.iter().enumerate() {
                for b in &rects[i + 1..] {
                    prop_assert!(!a.intersects(b));
                }
            }
        }
    }
}
