use crate::{ClipWindow, Coord, GeomError, Rect};
use serde::{Deserialize, Serialize};

/// Maximum number of pixels a raster may hold (guards against accidental
/// full-chip rasterisation at 1 nm pitch).
const MAX_PIXELS: i64 = 64 * 1024 * 1024;

/// A dense single-channel raster of a layout region.
///
/// Rasters store `f32` coverage per pixel (0.0 = empty, 1.0 = metal). Pixels
/// are addressed `(row, col)` with row 0 at the *bottom* of the region so that
/// raster coordinates grow with layout coordinates.
///
/// ```
/// use hotspot_geom::{Raster, Rect};
/// # fn main() -> Result<(), hotspot_geom::GeomError> {
/// let region = Rect::new(0, 0, 100, 100)?;
/// let mut raster = Raster::zeros(region, 10)?;
/// raster.fill_rect(&Rect::new(0, 0, 50, 100)?, 1.0);
/// assert!((raster.density() - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster {
    region: Rect,
    pitch: Coord,
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Raster {
    /// Creates an all-zero raster covering `region` at `pitch` nm per pixel.
    ///
    /// The pixel grid is anchored at the region's lower-left corner; a region
    /// whose extent is not a multiple of `pitch` gains a final partial pixel.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidPitch`] for a non-positive pitch and
    /// [`GeomError::RasterTooLarge`] when the pixel count would exceed an
    /// internal safety bound.
    pub fn zeros(region: Rect, pitch: Coord) -> Result<Self, GeomError> {
        if pitch <= 0 {
            return Err(GeomError::InvalidPitch { pitch });
        }
        let width = div_ceil(region.width(), pitch);
        let height = div_ceil(region.height(), pitch);
        if width * height > MAX_PIXELS {
            return Err(GeomError::RasterTooLarge {
                dims: (width, height),
            });
        }
        Ok(Raster {
            region,
            pitch,
            width: width as usize,
            height: height as usize,
            data: vec![0.0; (width * height) as usize],
        })
    }

    /// Creates an all-zero raster covering a clip's window.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Raster::zeros`].
    pub fn zeros_for(clip: &ClipWindow, pitch: Coord) -> Result<Self, GeomError> {
        Raster::zeros(clip.window(), pitch)
    }

    /// The layout region this raster covers.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Pixel pitch in nanometres.
    pub fn pitch(&self) -> Coord {
        self.pitch
    }

    /// Raster width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Immutable view of the pixel data in row-major order (row 0 = bottom).
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the pixel data in row-major order.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.height && col < self.width,
            "raster index out of bounds"
        );
        self.data[row * self.width + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.height && col < self.width,
            "raster index out of bounds"
        );
        self.data[row * self.width + col] = value;
    }

    /// Burns `rect ∩ region` into the raster with exact area weighting:
    /// each pixel receives the fraction of its area covered by `rect`,
    /// saturated at `value`.
    pub fn fill_rect(&mut self, rect: &Rect, value: f32) {
        let Some(clipped) = rect.intersection(&self.region) else {
            return;
        };
        let p = self.pitch as f64;
        let rx0 = (clipped.x0() - self.region.x0()) as f64 / p;
        let rx1 = (clipped.x1() - self.region.x0()) as f64 / p;
        let ry0 = (clipped.y0() - self.region.y0()) as f64 / p;
        let ry1 = (clipped.y1() - self.region.y0()) as f64 / p;
        let c0 = rx0.floor() as usize;
        let c1 = (rx1.ceil() as usize).min(self.width);
        let r0 = ry0.floor() as usize;
        let r1 = (ry1.ceil() as usize).min(self.height);
        for row in r0..r1 {
            let cov_y = overlap(row as f64, row as f64 + 1.0, ry0, ry1);
            for col in c0..c1 {
                let cov_x = overlap(col as f64, col as f64 + 1.0, rx0, rx1);
                let add = (cov_x * cov_y) as f32 * value;
                let px = &mut self.data[row * self.width + col];
                *px = (*px + add).min(value.max(*px));
            }
        }
    }

    /// Burns a rectilinear polygon into the raster (via its disjoint
    /// rectangle decomposition; see [`crate::Polygon::to_rects`]).
    pub fn fill_polygon(&mut self, polygon: &crate::Polygon, value: f32) {
        for rect in polygon.to_rects() {
            self.fill_rect(&rect, value);
        }
    }

    /// Mean pixel value — the pattern density of the raster.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Resamples the raster to `new_width × new_height` pixels by box
    /// averaging. Used to bring rasters to the fixed input size a feature
    /// extractor or network expects.
    pub fn resampled(&self, new_width: usize, new_height: usize) -> Raster {
        assert!(
            new_width > 0 && new_height > 0,
            "target size must be positive"
        );
        let mut out = Raster {
            region: self.region,
            pitch: self.pitch, // nominal; resampled pixels no longer align to pitch
            width: new_width,
            height: new_height,
            data: vec![0.0; new_width * new_height],
        };
        let sx = self.width as f64 / new_width as f64;
        let sy = self.height as f64 / new_height as f64;
        for row in 0..new_height {
            let y0 = row as f64 * sy;
            let y1 = (row as f64 + 1.0) * sy;
            for col in 0..new_width {
                let x0 = col as f64 * sx;
                let x1 = (col as f64 + 1.0) * sx;
                let mut acc = 0.0f64;
                let mut total = 0.0f64;
                let rr0 = y0.floor() as usize;
                let rr1 = (y1.ceil() as usize).min(self.height);
                let cc0 = x0.floor() as usize;
                let cc1 = (x1.ceil() as usize).min(self.width);
                for r in rr0..rr1 {
                    let wy = overlap(r as f64, r as f64 + 1.0, y0, y1);
                    for c in cc0..cc1 {
                        let wx = overlap(c as f64, c as f64 + 1.0, x0, x1);
                        acc += (wx * wy) * self.data[r * self.width + c] as f64;
                        total += wx * wy;
                    }
                }
                out.data[row * new_width + col] = if total > 0.0 {
                    (acc / total) as f32
                } else {
                    0.0
                };
            }
        }
        out
    }

    /// Decomposes the raster's filled area into layout-space rectangles:
    /// per-row runs of pixels at or above `threshold`, merged with the run
    /// directly below when their column spans match. The result is a compact
    /// vector form of the mask (used e.g. to draw clip geometry as SVG
    /// rectangles instead of per-pixel squares).
    ///
    /// Each pixel column `c` spans `[x0 + c·pitch, min(x0 + (c+1)·pitch, x1))`
    /// in layout coordinates, so partial edge pixels stay inside the region.
    pub fn filled_rects(&self, threshold: f32) -> Vec<Rect> {
        // (col0, col1) spans per row, bottom row first.
        let mut row_runs: Vec<Vec<(usize, usize)>> = Vec::with_capacity(self.height);
        for row in 0..self.height {
            let mut runs = Vec::new();
            let mut start: Option<usize> = None;
            for col in 0..self.width {
                let on = self.data[row * self.width + col] >= threshold;
                match (on, start) {
                    (true, None) => start = Some(col),
                    (false, Some(s)) => {
                        runs.push((s, col));
                        start = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = start {
                runs.push((s, self.width));
            }
            row_runs.push(runs);
        }
        // Merge vertically: a run extends the rect below when the column
        // span matches exactly. (row0, row1, col0, col1), half-open.
        let mut open: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut done: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (row, runs) in row_runs.iter().enumerate() {
            let mut next_open = Vec::with_capacity(runs.len());
            for &(c0, c1) in runs {
                if let Some(i) = open
                    .iter()
                    .position(|&(_, r1, oc0, oc1)| r1 == row && oc0 == c0 && oc1 == c1)
                {
                    let (r0, _, _, _) = open.swap_remove(i);
                    next_open.push((r0, row + 1, c0, c1));
                } else {
                    next_open.push((row, row + 1, c0, c1));
                }
            }
            done.append(&mut open);
            open = next_open;
        }
        done.append(&mut open);
        done.sort_unstable();
        done.into_iter()
            .map(|(r0, r1, c0, c1)| {
                let x0 = self.region.x0() + c0 as Coord * self.pitch;
                let x1 = (self.region.x0() + c1 as Coord * self.pitch).min(self.region.x1());
                let y0 = self.region.y0() + r0 as Coord * self.pitch;
                let y1 = (self.region.y0() + r1 as Coord * self.pitch).min(self.region.y1());
                Rect::spanning(crate::Point::new(x0, y0), crate::Point::new(x1, y1))
            })
            .collect()
    }

    /// Extracts the sub-raster covering `rect` (must intersect the region),
    /// snapped outwards to pixel boundaries.
    pub fn crop(&self, rect: &Rect) -> Option<Raster> {
        let clipped = rect.intersection(&self.region)?;
        let c0 = ((clipped.x0() - self.region.x0()) / self.pitch) as usize;
        let r0 = ((clipped.y0() - self.region.y0()) / self.pitch) as usize;
        let c1 = div_ceil(clipped.x1() - self.region.x0(), self.pitch) as usize;
        let r1 = div_ceil(clipped.y1() - self.region.y0(), self.pitch) as usize;
        let c1 = c1.min(self.width);
        let r1 = r1.min(self.height);
        let w = c1.saturating_sub(c0);
        let h = r1.saturating_sub(r0);
        if w == 0 || h == 0 {
            return None;
        }
        let mut data = Vec::with_capacity(w * h);
        for row in r0..r1 {
            data.extend_from_slice(&self.data[row * self.width + c0..row * self.width + c1]);
        }
        Some(Raster {
            region: clipped,
            pitch: self.pitch,
            width: w,
            height: h,
            data,
        })
    }
}

fn div_ceil(a: Coord, b: Coord) -> i64 {
    (a + b - 1) / b
}

fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn region(w: Coord, h: Coord) -> Rect {
        Rect::new(0, 0, w, h).unwrap()
    }

    #[test]
    fn zeros_has_expected_dims() {
        let r = Raster::zeros(region(100, 60), 10).unwrap();
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 6);
        assert_eq!(r.pixels().len(), 60);
        assert_eq!(r.density(), 0.0);
    }

    #[test]
    fn partial_pixel_rounds_up() {
        let r = Raster::zeros(region(105, 95), 10).unwrap();
        assert_eq!(r.width(), 11);
        assert_eq!(r.height(), 10);
    }

    #[test]
    fn rejects_bad_pitch() {
        assert!(Raster::zeros(region(10, 10), 0).is_err());
        assert!(Raster::zeros(region(10, 10), -5).is_err());
    }

    #[test]
    fn fill_full_region_saturates_density() {
        let mut r = Raster::zeros(region(80, 80), 8).unwrap();
        r.fill_rect(&region(80, 80), 1.0);
        assert!((r.density() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fill_half_region() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 50, 100).unwrap(), 1.0);
        assert!((r.density() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fill_subpixel_rect_weights_area() {
        let mut r = Raster::zeros(region(10, 10), 10).unwrap();
        // Quarter of the single pixel.
        r.fill_rect(&Rect::new(0, 0, 5, 5).unwrap(), 1.0);
        assert!((r.at(0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fill_outside_region_is_noop() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(200, 200, 300, 300).unwrap(), 1.0);
        assert_eq!(r.density(), 0.0);
    }

    #[test]
    fn fill_polygon_matches_area() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        let poly = crate::Polygon::new(vec![
            crate::Point::new(0, 0),
            crate::Point::new(60, 0),
            crate::Point::new(60, 20),
            crate::Point::new(20, 20),
            crate::Point::new(20, 60),
            crate::Point::new(0, 60),
        ])
        .unwrap();
        r.fill_polygon(&poly, 1.0);
        let expected = poly.area() as f64 / region(100, 100).area() as f64;
        assert!((r.density() - expected).abs() < 1e-4);
    }

    #[test]
    fn overlapping_fills_saturate() {
        let mut r = Raster::zeros(region(10, 10), 10).unwrap();
        r.fill_rect(&region(10, 10), 1.0);
        r.fill_rect(&region(10, 10), 1.0);
        assert!((r.at(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn resample_preserves_mean_roughly() {
        let mut r = Raster::zeros(region(160, 160), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 80, 160).unwrap(), 1.0);
        let small = r.resampled(8, 8);
        assert!((small.density() - 0.5).abs() < 0.01);
        assert_eq!(small.width(), 8);
        assert_eq!(small.height(), 8);
    }

    #[test]
    fn crop_extracts_subregion() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 50, 100).unwrap(), 1.0);
        let left = r.crop(&Rect::new(0, 0, 50, 100).unwrap()).unwrap();
        assert!((left.density() - 1.0).abs() < 1e-6);
        let right = r.crop(&Rect::new(50, 0, 100, 100).unwrap()).unwrap();
        assert!(right.density() < 1e-6);
    }

    #[test]
    fn filled_rects_recovers_simple_shapes() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 50, 100).unwrap(), 1.0);
        let rects = r.filled_rects(0.5);
        assert_eq!(rects, vec![Rect::new(0, 0, 50, 100).unwrap()]);
    }

    #[test]
    fn filled_rects_splits_disjoint_columns() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 20, 100).unwrap(), 1.0);
        r.fill_rect(&Rect::new(60, 0, 80, 100).unwrap(), 1.0);
        let rects = r.filled_rects(0.5);
        assert_eq!(
            rects,
            vec![
                Rect::new(0, 0, 20, 100).unwrap(),
                Rect::new(60, 0, 80, 100).unwrap(),
            ]
        );
    }

    #[test]
    fn filled_rects_area_matches_l_shape() {
        let mut r = Raster::zeros(region(100, 100), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 60, 20).unwrap(), 1.0);
        r.fill_rect(&Rect::new(0, 20, 20, 60).unwrap(), 1.0);
        let rects = r.filled_rects(0.5);
        let total: i128 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, 60 * 20 + 20 * 40);
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn filled_rects_on_empty_raster_is_empty() {
        let r = Raster::zeros(region(100, 100), 10).unwrap();
        assert!(r.filled_rects(0.5).is_empty());
    }

    #[test]
    fn filled_rects_clamps_partial_edge_pixels() {
        // 105 nm region at pitch 10 has a partial final column.
        let mut r = Raster::zeros(Rect::new(0, 0, 105, 50).unwrap(), 10).unwrap();
        r.fill_rect(&Rect::new(0, 0, 105, 50).unwrap(), 1.0);
        let rects = r.filled_rects(0.5);
        for rect in &rects {
            assert!(rect.x1() <= 105 && rect.y1() <= 50);
        }
    }

    #[test]
    fn crop_disjoint_returns_none() {
        let r = Raster::zeros(region(100, 100), 10).unwrap();
        assert!(r.crop(&Rect::new(500, 500, 600, 600).unwrap()).is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_panics_out_of_bounds() {
        let r = Raster::zeros(region(100, 100), 10).unwrap();
        let _ = r.at(10, 0);
    }

    proptest! {
        #[test]
        fn prop_density_bounded(
            w in 1i64..30, h in 1i64..30,
            rx in 0i64..300, ry in 0i64..300, rw in 0i64..300, rh in 0i64..300,
        ) {
            let mut r = Raster::zeros(region(w * 10, h * 10), 10).unwrap();
            r.fill_rect(&Rect::new(rx, ry, rx + rw, ry + rh).unwrap(), 1.0);
            let d = r.density();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        }

        #[test]
        fn prop_fill_density_matches_clipped_area(
            rx in 0i64..200, ry in 0i64..200, rw in 0i64..200, rh in 0i64..200,
        ) {
            let reg = region(200, 200);
            let mut r = Raster::zeros(reg, 10).unwrap();
            let rect = Rect::new(rx, ry, (rx + rw).min(200), (ry + rh).min(200)).unwrap();
            r.fill_rect(&rect, 1.0);
            let expected = rect.intersection(&reg).map(|c| c.area() as f64).unwrap_or(0.0)
                / reg.area() as f64;
            prop_assert!((r.density() - expected).abs() < 1e-4);
        }
    }
}
