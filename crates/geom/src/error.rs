use std::fmt;

/// Error type for geometry construction and rasterisation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A rectangle was constructed with `x1 < x0` or `y1 < y0`.
    InvertedRect {
        /// Offending coordinates `(x0, y0, x1, y1)`.
        coords: (i64, i64, i64, i64),
    },
    /// A clip core size did not fit inside the clip window.
    CoreTooLarge {
        /// Requested core edge length in nanometres.
        core: i64,
        /// Clip window edge lengths `(width, height)`.
        window: (i64, i64),
    },
    /// A raster was requested with a non-positive pixel pitch.
    InvalidPitch {
        /// The offending pitch value.
        pitch: i64,
    },
    /// A raster was requested whose pixel count overflows.
    RasterTooLarge {
        /// Requested raster dimensions `(width_px, height_px)`.
        dims: (i64, i64),
    },
    /// A polygon vertex loop was not a valid rectilinear boundary.
    InvalidPolygon {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvertedRect { coords } => write!(
                f,
                "rectangle has inverted extent: ({}, {}) .. ({}, {})",
                coords.0, coords.1, coords.2, coords.3
            ),
            GeomError::CoreTooLarge { core, window } => write!(
                f,
                "core edge {} nm does not fit in {} x {} nm clip window",
                core, window.0, window.1
            ),
            GeomError::InvalidPitch { pitch } => {
                write!(f, "raster pixel pitch must be positive, got {pitch}")
            }
            GeomError::RasterTooLarge { dims } => {
                write!(f, "raster of {} x {} pixels is too large", dims.0, dims.1)
            }
            GeomError::InvalidPolygon { detail } => {
                write!(f, "invalid rectilinear polygon: {detail}")
            }
        }
    }
}

impl std::error::Error for GeomError {}
