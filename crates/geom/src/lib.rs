//! Integer Manhattan geometry primitives for VLSI layout clips.
//!
//! This crate is the lowest layer of the `lithohd` workspace: everything a
//! lithography-hotspot pipeline needs to describe layout *clips* — axis-aligned
//! rectangles in integer nanometres, clip windows with a core region, and
//! dense rasters onto which geometry is burned before feature extraction or
//! aerial-image simulation.
//!
//! # Example
//!
//! ```
//! use hotspot_geom::{Rect, ClipWindow, Raster};
//!
//! # fn main() -> Result<(), hotspot_geom::GeomError> {
//! // A 1200 nm × 1200 nm clip whose central 600 nm × 600 nm is the core.
//! let clip = ClipWindow::new(Rect::new(0, 0, 1200, 1200)?, 600)?;
//! let wire = Rect::new(100, 550, 1100, 610)?;
//! assert!(clip.core().intersects(&wire));
//!
//! // Burn the wire into a 10 nm/pixel raster.
//! let mut raster = Raster::zeros_for(&clip, 10)?;
//! raster.fill_rect(&wire, 1.0);
//! assert!(raster.density() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod clip;
mod error;
mod point;
mod polygon;
mod raster;
mod rect;

pub use clip::ClipWindow;
pub use error::GeomError;
pub use point::Point;
pub use polygon::Polygon;
pub use raster::Raster;
pub use rect::Rect;

/// Integer coordinate type used throughout the workspace (nanometres).
pub type Coord = i64;
