use serde::{Deserialize, Serialize};
use std::fmt;

/// One equal-width confidence bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Inclusive lower confidence edge.
    pub lower: f64,
    /// Exclusive upper confidence edge (inclusive for the last bin).
    pub upper: f64,
    /// Samples whose top confidence fell in this bin.
    pub count: usize,
    /// Mean predicted confidence of those samples (0 when empty).
    pub mean_confidence: f64,
    /// Empirical accuracy of those samples (0 when empty).
    pub accuracy: f64,
}

impl ReliabilityBin {
    /// The calibration gap `|confidence − accuracy|` of this bin.
    pub fn gap(&self) -> f64 {
        (self.mean_confidence - self.accuracy).abs()
    }
}

/// A reliability diagram: confidence-vs-accuracy over equal-width bins
/// (Fig. 2 of the paper, 10 bins).
///
/// ```
/// use hotspot_calibration::ReliabilityDiagram;
/// // Two predictions at 90% confidence, one right and one wrong.
/// let diagram = ReliabilityDiagram::from_predictions(&[0.9, 0.9], &[true, false], 10);
/// assert!((diagram.ece() - 0.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityDiagram {
    bins: Vec<ReliabilityBin>,
    total: usize,
}

impl ReliabilityDiagram {
    /// Bins `(confidence, correct)` pairs into `n_bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics when `n_bins` is zero, lengths differ, or a confidence is
    /// outside `[0, 1]`.
    pub fn from_predictions(confidences: &[f64], correct: &[bool], n_bins: usize) -> Self {
        assert!(n_bins > 0, "bin count must be positive");
        assert_eq!(
            confidences.len(),
            correct.len(),
            "confidence/correctness length mismatch"
        );
        let mut sums = vec![(0usize, 0.0f64, 0usize); n_bins]; // (count, conf sum, hits)
        for (&c, &ok) in confidences.iter().zip(correct) {
            assert!((0.0..=1.0).contains(&c), "confidence {c} outside [0, 1]");
            let mut bin = (c * n_bins as f64) as usize;
            if bin == n_bins {
                bin -= 1; // c == 1.0 goes in the last bin
            }
            sums[bin].0 += 1;
            sums[bin].1 += c;
            sums[bin].2 += ok as usize;
        }
        let bins = sums
            .into_iter()
            .enumerate()
            .map(|(i, (count, conf_sum, hits))| {
                let lower = i as f64 / n_bins as f64;
                let upper = (i + 1) as f64 / n_bins as f64;
                if count == 0 {
                    ReliabilityBin {
                        lower,
                        upper,
                        count,
                        mean_confidence: 0.0,
                        accuracy: 0.0,
                    }
                } else {
                    ReliabilityBin {
                        lower,
                        upper,
                        count,
                        mean_confidence: conf_sum / count as f64,
                        accuracy: hits as f64 / count as f64,
                    }
                }
            })
            .collect();
        ReliabilityDiagram {
            bins,
            total: confidences.len(),
        }
    }

    /// Bins argmax predictions from row-major `n × 2` class probabilities
    /// against integer truth labels. The confidence of a prediction is its
    /// winning-class probability; non-finite probabilities are treated as a
    /// maximally uncertain `0.5`, and confidences are clamped to `[0, 1]`
    /// so float drift can never trip the range assertion.
    ///
    /// # Panics
    ///
    /// Panics when `n_bins` is zero or `probabilities.len() != 2 * truth.len()`.
    pub fn from_binary_probabilities(
        probabilities: &[f32],
        truth: &[usize],
        n_bins: usize,
    ) -> Self {
        assert_eq!(
            probabilities.len(),
            truth.len() * 2,
            "probability/truth length mismatch"
        );
        let mut confidences = Vec::with_capacity(truth.len());
        let mut correct = Vec::with_capacity(truth.len());
        for (i, &label) in truth.iter().enumerate() {
            let p0 = probabilities[2 * i];
            let p1 = probabilities[2 * i + 1];
            let predicted = usize::from(p1 > p0);
            let raw = f64::from(if predicted == 1 { p1 } else { p0 });
            let confidence = if raw.is_finite() {
                raw.clamp(0.0, 1.0)
            } else {
                0.5
            };
            confidences.push(confidence);
            correct.push(predicted == label);
        }
        Self::from_predictions(&confidences, &correct, n_bins)
    }

    /// The bins, low confidence first.
    pub fn bins(&self) -> &[ReliabilityBin] {
        &self.bins
    }

    /// Total predictions binned.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Expected calibration error: the count-weighted mean bin gap.
    pub fn ece(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|b| b.count as f64 / self.total as f64 * b.gap())
            .sum()
    }

    /// Maximum calibration error: the largest gap over non-empty bins.
    pub fn mce(&self) -> f64 {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(ReliabilityBin::gap)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ReliabilityDiagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confidence bin   count   conf    acc    gap")?;
        for b in &self.bins {
            writeln!(
                f,
                "[{:.2}, {:.2})   {:>6}   {:.3}  {:.3}  {:.3}",
                b.lower,
                b.upper,
                b.count,
                b.mean_confidence,
                b.accuracy,
                b.gap()
            )?;
        }
        write!(f, "ECE = {:.4}", self.ece())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // 10 samples at 0.75 confidence; exactly 7.5 would be perfect, use 3/4.
        let confidences = vec![0.75; 4];
        let correct = vec![true, true, true, false];
        let d = ReliabilityDiagram::from_predictions(&confidences, &correct, 10);
        assert!(d.ece() < 1e-9);
    }

    #[test]
    fn overconfident_model_has_large_ece() {
        let confidences = vec![0.99; 10];
        let correct: Vec<bool> = (0..10).map(|i| i < 5).collect();
        let d = ReliabilityDiagram::from_predictions(&confidences, &correct, 10);
        assert!((d.ece() - 0.49).abs() < 1e-9);
        assert!((d.mce() - 0.49).abs() < 1e-9);
    }

    #[test]
    fn confidence_one_lands_in_last_bin() {
        let d = ReliabilityDiagram::from_predictions(&[1.0], &[true], 10);
        assert_eq!(d.bins()[9].count, 1);
    }

    #[test]
    fn empty_input_is_zero_ece() {
        let d = ReliabilityDiagram::from_predictions(&[], &[], 10);
        assert_eq!(d.ece(), 0.0);
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn bin_edges_cover_unit_interval() {
        let d = ReliabilityDiagram::from_predictions(&[0.5], &[true], 4);
        assert_eq!(d.bins().len(), 4);
        assert_eq!(d.bins()[0].lower, 0.0);
        assert_eq!(d.bins()[3].upper, 1.0);
    }

    #[test]
    fn display_contains_ece() {
        let d = ReliabilityDiagram::from_predictions(&[0.9], &[true], 10);
        assert!(d.to_string().contains("ECE"));
    }

    #[test]
    fn binary_probabilities_bin_by_winning_class() {
        // Row 0: class 1 wins at 0.95 and is correct; row 1: class 0 wins at
        // 0.65 and is wrong. Mid-bin values keep f32→f64 drift away from the
        // bin edges.
        let probabilities = [0.05, 0.95, 0.65, 0.35];
        let truth = [1, 1];
        let d = ReliabilityDiagram::from_binary_probabilities(&probabilities, &truth, 10);
        assert_eq!(d.total(), 2);
        assert_eq!(d.bins()[9].count, 1);
        assert!((d.bins()[9].accuracy - 1.0).abs() < 1e-9);
        assert_eq!(d.bins()[6].count, 1);
        assert_eq!(d.bins()[6].accuracy, 0.0);
    }

    #[test]
    fn binary_probabilities_absorb_nonfinite() {
        let probabilities = [f32::NAN, f32::NAN, 2.0, -1.0];
        let truth = [0, 0];
        let d = ReliabilityDiagram::from_binary_probabilities(&probabilities, &truth, 10);
        assert_eq!(d.total(), 2);
        for b in d.bins() {
            assert!(b.mean_confidence.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_confidence() {
        let _ = ReliabilityDiagram::from_predictions(&[1.5], &[true], 10);
    }

    proptest! {
        #[test]
        fn prop_ece_bounded_by_one(
            data in proptest::collection::vec((0.0f64..=1.0, any::<bool>()), 1..100),
        ) {
            let confidences: Vec<f64> = data.iter().map(|&(c, _)| c).collect();
            let correct: Vec<bool> = data.iter().map(|&(_, k)| k).collect();
            let d = ReliabilityDiagram::from_predictions(&confidences, &correct, 10);
            prop_assert!((0.0..=1.0).contains(&d.ece()));
            prop_assert!(d.ece() <= d.mce() + 1e-12);
        }

        #[test]
        fn prop_counts_sum_to_total(
            confidences in proptest::collection::vec(0.0f64..=1.0, 1..100),
        ) {
            let correct = vec![true; confidences.len()];
            let d = ReliabilityDiagram::from_predictions(&confidences, &correct, 7);
            let sum: usize = d.bins().iter().map(|b| b.count).sum();
            prop_assert_eq!(sum, confidences.len());
        }
    }
}
