/// One operating point of a detector: the false-positive and true-positive
/// rates at some threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold this point corresponds to (predict positive at or
    /// above it).
    pub threshold: f32,
    /// False-positive rate in `[0, 1]`.
    pub fpr: f64,
    /// True-positive rate (recall) in `[0, 1]`.
    pub tpr: f64,
}

/// The ROC curve of a scored binary detector, threshold-swept over every
/// distinct score.
///
/// Hotspot detection picks one threshold (the paper reuses `h = 0.4`), but
/// the full curve is what tells you whether a different trade-off was
/// available — useful when tuning the detection threshold of
/// `SamplingConfig`.
///
/// ```
/// use hotspot_calibration::RocCurve;
/// let scores = [0.9f32, 0.8, 0.3, 0.1];
/// let labels = [true, true, false, false];
/// let roc = RocCurve::from_scores(&scores, &labels);
/// assert!((roc.auc() - 1.0).abs() < 1e-12); // perfect ranking
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    positives: usize,
    negatives: usize,
}

impl RocCurve {
    /// Builds the curve from per-sample scores (higher = more positive) and
    /// ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ or either class is absent (an ROC curve is
    /// undefined without both classes).
    pub fn from_scores(scores: &[f32], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
        let positives = labels.iter().filter(|&&l| l).count();
        let negatives = labels.len() - positives;
        assert!(
            positives > 0 && negatives > 0,
            "ROC needs both classes ({positives} positives, {negatives} negatives)"
        );
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut points = vec![RocPoint {
            threshold: f32::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < order.len() {
            // Advance through ties as a block so the curve is well-defined.
            let threshold = scores[order[i]];
            while i < order.len() && scores[order[i]] == threshold {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                fpr: fp as f64 / negatives as f64,
                tpr: tp as f64 / positives as f64,
            });
        }
        RocCurve {
            points,
            positives,
            negatives,
        }
    }

    /// The curve's operating points, from the strictest threshold to the
    /// most permissive.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Positive-sample count.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Negative-sample count.
    pub fn negatives(&self) -> usize {
        self.negatives
    }

    /// Area under the curve (trapezoidal rule). 1.0 = perfect ranking,
    /// 0.5 = chance.
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            area += (pair[1].fpr - pair[0].fpr) * (pair[1].tpr + pair[0].tpr) / 2.0;
        }
        area
    }

    /// The operating point at a given threshold (predict positive at or
    /// above it).
    pub fn at_threshold(&self, threshold: f32) -> RocPoint {
        // Points are ordered by decreasing threshold; take the last point
        // whose threshold is still >= the query.
        let mut best = self.points[0];
        for &p in &self.points[1..] {
            if p.threshold >= threshold {
                best = p;
            } else {
                break;
            }
        }
        RocPoint {
            threshold,
            fpr: best.fpr,
            tpr: best.tpr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_has_unit_auc() {
        let roc = RocCurve::from_scores(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_zero_auc() {
        let roc = RocCurve::from_scores(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]);
        assert!(roc.auc() < 1e-12);
    }

    #[test]
    fn interleaved_is_half() {
        // All scores tied: one diagonal segment, AUC exactly 0.5.
        let roc = RocCurve::from_scores(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn at_threshold_interpolates_operating_point() {
        let roc = RocCurve::from_scores(&[0.9, 0.6, 0.4, 0.2], &[true, false, true, false]);
        let p = roc.at_threshold(0.5);
        // At ≥ 0.5 we predict the first two samples positive: tp 1/2, fp 1/2.
        assert!((p.tpr - 0.5).abs() < 1e-12);
        assert!((p.fpr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endpoints_are_corners() {
        let roc = RocCurve::from_scores(&[0.9, 0.1], &[true, false]);
        let first = roc.points().first().unwrap();
        let last = roc.points().last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let _ = RocCurve::from_scores(&[0.5, 0.6], &[true, true]);
    }

    proptest! {
        #[test]
        fn prop_auc_in_unit_interval(
            scores in proptest::collection::vec(0.0f32..1.0, 4..50),
            flip in any::<u64>(),
        ) {
            // Derive labels from bits of `flip`, forcing both classes.
            let mut labels: Vec<bool> = (0..scores.len()).map(|i| (flip >> (i % 64)) & 1 == 1).collect();
            labels[0] = true;
            let n = labels.len();
            labels[n - 1] = false;
            let roc = RocCurve::from_scores(&scores, &labels);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&roc.auc()));
        }

        #[test]
        fn prop_tpr_fpr_monotone(scores in proptest::collection::vec(0.0f32..1.0, 4..40)) {
            let labels: Vec<bool> = (0..scores.len()).map(|i| i % 2 == 0).collect();
            let roc = RocCurve::from_scores(&scores, &labels);
            for pair in roc.points().windows(2) {
                prop_assert!(pair[1].fpr >= pair[0].fpr - 1e-12);
                prop_assert!(pair[1].tpr >= pair[0].tpr - 1e-12);
            }
        }
    }
}
