use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for temperature fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CalibrationError {
    /// The logit buffer is not a whole number of `classes`-wide rows.
    BadLogitShape {
        /// Buffer length.
        len: usize,
        /// Class count.
        classes: usize,
    },
    /// Label count differs from the number of logit rows.
    LabelCountMismatch {
        /// Logit rows.
        rows: usize,
        /// Labels provided.
        labels: usize,
    },
    /// A label was out of range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Class count.
        classes: usize,
    },
    /// The validation set was empty.
    EmptyValidationSet,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::BadLogitShape { len, classes } => {
                write!(
                    f,
                    "logit buffer of {len} entries is not a multiple of {classes} classes"
                )
            }
            CalibrationError::LabelCountMismatch { rows, labels } => {
                write!(f, "{rows} logit rows but {labels} labels")
            }
            CalibrationError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            CalibrationError::EmptyValidationSet => write!(f, "validation set is empty"),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// A fitted softmax temperature (Eq. 5 of the paper).
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Temperature {
    value: f64,
}

impl Temperature {
    /// The identity temperature `T = 1` (no calibration).
    pub fn identity() -> Self {
        Temperature { value: 1.0 }
    }

    /// Wraps an explicit temperature.
    ///
    /// # Panics
    ///
    /// Panics when `value` is not finite and positive.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value > 0.0,
            "temperature must be positive, got {value}"
        );
        Temperature { value }
    }

    /// Fits `T` by minimising validation NLL with golden-section search over
    /// `ln T ∈ [ln 0.25, ln 10]`. The bounded range keeps a perfectly
    /// separable validation set from driving `T → 0` (which would saturate
    /// every probability to 0/1 and destroy the uncertainty ranking).
    ///
    /// `logits` is row-major with `classes` entries per sample.
    ///
    /// # Errors
    ///
    /// Returns shape errors as described on [`CalibrationError`].
    pub fn fit(logits: &[f32], classes: usize, labels: &[usize]) -> Result<Self, CalibrationError> {
        if classes == 0 || !logits.len().is_multiple_of(classes) {
            return Err(CalibrationError::BadLogitShape {
                len: logits.len(),
                classes: classes.max(1),
            });
        }
        let rows = logits.len() / classes;
        if rows == 0 {
            return Err(CalibrationError::EmptyValidationSet);
        }
        if labels.len() != rows {
            return Err(CalibrationError::LabelCountMismatch {
                rows,
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(CalibrationError::LabelOutOfRange {
                label: bad,
                classes,
            });
        }

        let _fit_span = hotspot_telemetry::span(hotspot_telemetry::names::SPAN_CALIBRATE)
            .with("rows", rows as u64);
        let nll_at = |ln_t: f64| nll(logits, classes, labels, ln_t.exp());
        // Golden-section search on the (unimodal in practice) NLL curve.
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let mut a = (0.25f64).ln();
        let mut b = (10.0f64).ln();
        let mut c = b - phi * (b - a);
        let mut d = a + phi * (b - a);
        let mut fc = nll_at(c);
        let mut fd = nll_at(d);
        for _ in 0..80 {
            if fc < fd {
                b = d;
                d = c;
                fd = fc;
                c = b - phi * (b - a);
                fc = nll_at(c);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + phi * (b - a);
                fd = nll_at(d);
            }
        }
        let value = (0.5 * (a + b)).exp();
        hotspot_telemetry::gauge(hotspot_telemetry::names::CALIBRATION_TEMPERATURE).set(value);
        hotspot_telemetry::debug(
            "calibration.temperature",
            "temperature fitted (Eq. 4)",
            &[
                ("temperature", value.into()),
                ("rows", (rows as u64).into()),
            ],
        );
        Ok(Temperature { value })
    }

    /// The scalar temperature.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Temperature-scaled softmax of one logit row (Eq. 5).
    pub fn probabilities(&self, logits: &[f32]) -> Vec<f32> {
        let t = self.value as f32;
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut out: Vec<f32> = logits.iter().map(|&z| ((z - max) / t).exp()).collect();
        let sum: f32 = out.iter().sum();
        for v in &mut out {
            *v /= sum;
        }
        out
    }

    /// One logit row divided by the temperature — the calibrated logits a
    /// scoring service reports alongside the softmax probabilities, so a
    /// downstream consumer can re-derive the probability (or combine
    /// ensembles in logit space) without knowing `T`.
    pub fn scaled_logits(&self, logits: &[f32]) -> Vec<f32> {
        let t = self.value as f32;
        logits.iter().map(|&z| z / t).collect()
    }

    /// Temperature-scaled softmax over a row-major logit buffer.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is not a whole number of rows.
    pub fn probabilities_batch(&self, logits: &[f32], classes: usize) -> Vec<f32> {
        assert!(
            classes > 0 && logits.len().is_multiple_of(classes),
            "bad logit shape"
        );
        let mut out = Vec::with_capacity(logits.len());
        for row in logits.chunks_exact(classes) {
            out.extend(self.probabilities(row));
        }
        out
    }
}

impl Default for Temperature {
    /// Same as [`Temperature::identity`].
    fn default() -> Self {
        Temperature::identity()
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T = {:.4}", self.value)
    }
}

/// Mean negative log-likelihood at temperature `t`.
fn nll(logits: &[f32], classes: usize, labels: &[usize], t: f64) -> f64 {
    let mut total = 0.0f64;
    for (row, &label) in logits.chunks_exact(classes).zip(labels) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let mut sum = 0.0f64;
        for &z in row {
            sum += ((z as f64 - max) / t).exp();
        }
        let log_p = (row[label] as f64 - max) / t - sum.ln();
        total -= log_p;
    }
    total / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logits that are directionally correct but over-confident: the model
    /// is right 75% of the time yet predicts with ~99.7% confidence.
    fn overconfident_set() -> (Vec<f32>, Vec<usize>) {
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            logits.extend_from_slice(&[6.0, -6.0]);
            labels.push(if i % 4 == 0 { 1 } else { 0 });
        }
        (logits, labels)
    }

    /// Under-confident logits: always right but barely sure.
    fn underconfident_set() -> (Vec<f32>, Vec<usize>) {
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..40 {
            logits.extend_from_slice(&[0.2, -0.2]);
        }
        labels.extend(std::iter::repeat_n(0, 40));
        (logits, labels)
    }

    #[test]
    fn fit_softens_overconfidence() {
        let (logits, labels) = overconfident_set();
        let t = Temperature::fit(&logits, 2, &labels).unwrap();
        assert!(t.value() > 2.0, "{t}");
        let p = t.probabilities(&logits[..2]);
        assert!(p[0] < 0.9, "still overconfident: {p:?}");
    }

    #[test]
    fn fit_sharpens_underconfidence() {
        let (logits, labels) = underconfident_set();
        let t = Temperature::fit(&logits, 2, &labels).unwrap();
        assert!(t.value() < 1.0, "{t}");
        // …but never below the sanity floor.
        assert!(t.value() >= 0.25 - 1e-9, "{t}");
    }

    #[test]
    fn scaling_preserves_argmax() {
        let (logits, labels) = overconfident_set();
        let t = Temperature::fit(&logits, 2, &labels).unwrap();
        for row in logits.chunks_exact(2) {
            let p = t.probabilities(row);
            let pred_scaled = if p[0] > p[1] { 0 } else { 1 };
            let pred_raw = if row[0] > row[1] { 0 } else { 1 };
            assert_eq!(pred_scaled, pred_raw);
        }
    }

    #[test]
    fn fit_reduces_nll() {
        let (logits, labels) = overconfident_set();
        let t = Temperature::fit(&logits, 2, &labels).unwrap();
        let before = nll(&logits, 2, &labels, 1.0);
        let after = nll(&logits, 2, &labels, t.value());
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let t = Temperature::new(2.5);
        let p = t.probabilities(&[1.0, -2.0, 0.5]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn batch_matches_rowwise() {
        let t = Temperature::new(1.7);
        let logits = [1.0f32, -1.0, 0.3, 0.6];
        let batch = t.probabilities_batch(&logits, 2);
        let first = t.probabilities(&logits[..2]);
        assert_eq!(&batch[..2], first.as_slice());
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            Temperature::fit(&[1.0, 2.0, 3.0], 2, &[0]),
            Err(CalibrationError::BadLogitShape { .. })
        ));
        assert!(matches!(
            Temperature::fit(&[1.0, 2.0], 2, &[0, 1]),
            Err(CalibrationError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            Temperature::fit(&[1.0, 2.0], 2, &[7]),
            Err(CalibrationError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            Temperature::fit(&[], 2, &[]),
            Err(CalibrationError::EmptyValidationSet)
        ));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_temperature() {
        let _ = Temperature::new(0.0);
    }

    #[test]
    fn scaled_logits_divide_by_t_and_recover_probabilities() {
        let temperature = Temperature::new(2.0);
        let logits = [1.0f32, -3.0];
        let scaled = temperature.scaled_logits(&logits);
        assert_eq!(scaled, vec![0.5, -1.5]);
        // Softmax of the scaled logits at T = 1 equals the calibrated
        // probabilities at T = 2 — the contract served scores rely on.
        let direct = temperature.probabilities(&logits);
        let via_scaled = Temperature::identity().probabilities(&scaled);
        assert_eq!(direct, via_scaled);
    }
}
