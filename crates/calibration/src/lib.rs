//! Model calibration: temperature scaling, ECE, and reliability diagrams.
//!
//! Modern neural networks are over-confident (Guo et al., ICML 2017); the
//! DAC 2021 paper's uncertainty metric (Eq. 5–6) is therefore computed on
//! *calibrated* probabilities. This crate supplies:
//!
//! * [`Temperature`] / [`Temperature::fit`] — post-hoc temperature scaling:
//!   a single scalar `T > 0` dividing the logits, chosen to minimise the
//!   negative log-likelihood on a validation set (golden-section search on
//!   `ln T`). Scaling never changes the argmax prediction, only the
//!   confidence.
//! * [`ReliabilityDiagram`] — the equal-width confidence-vs-accuracy binning
//!   of Fig. 2, plus the expected calibration error ([`ReliabilityDiagram::
//!   ece`]).
//! * [`RocCurve`] — threshold-swept ROC analysis with AUC, for tuning the
//!   detection threshold the framework predicts hotspots at.
//!
//! # Example
//!
//! ```
//! use hotspot_calibration::Temperature;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Over-confident logits: correct half the time but predicted at >99%.
//! let logits = vec![
//!     6.0, -6.0,   6.0, -6.0,   6.0, -6.0,   6.0, -6.0,
//! ];
//! let labels = vec![0usize, 1, 0, 1];
//! let t = Temperature::fit(&logits, 2, &labels)?;
//! assert!(t.value() > 1.0); // softened
//! let p = t.probabilities(&logits[..2]);
//! assert!(p[0] < 0.99);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod reliability;
mod roc;
mod temperature;

pub use reliability::{ReliabilityBin, ReliabilityDiagram};
pub use roc::{RocCurve, RocPoint};
pub use temperature::{CalibrationError, Temperature};
