use std::fmt;

/// Error type for network construction, training, and serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A matrix was built from rows of inconsistent width.
    RaggedRows {
        /// Width of the first row.
        expected: usize,
        /// Width of the offending row.
        found: usize,
    },
    /// Two matrices had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        left: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        right: (usize, usize),
    },
    /// The label vector length does not match the batch size.
    LabelCountMismatch {
        /// Batch rows.
        batch: usize,
        /// Labels provided.
        labels: usize,
    },
    /// A label index was out of range for the class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// An empty batch was passed to training.
    EmptyBatch,
    /// `Layer::backward` was called without a preceding `forward_train`,
    /// so the layer has no cached activations to differentiate through.
    BackwardWithoutForward {
        /// The offending layer's `kind()` tag.
        layer: &'static str,
    },
    /// A serialised snapshot did not match the network architecture.
    SnapshotMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::RaggedRows { expected, found } => {
                write!(
                    f,
                    "matrix rows have inconsistent widths: expected {expected}, found {found}"
                )
            }
            NnError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NnError::LabelCountMismatch { batch, labels } => {
                write!(
                    f,
                    "batch has {batch} rows but {labels} labels were provided"
                )
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::EmptyBatch => write!(f, "training batch is empty"),
            NnError::BackwardWithoutForward { layer } => {
                write!(f, "{layer}: backward called without forward_train")
            }
            NnError::SnapshotMismatch { detail } => {
                write!(f, "network snapshot mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for NnError {}
