use crate::{Layer, Matrix, NetworkSnapshot, NnError, Optimizer, SoftmaxCrossEntropy};
use rayon::prelude::*;

/// A feed-forward stack of layers.
///
/// See the [crate-level example](crate) for an end-to-end training loop.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Pure forward pass through all layers.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Pure forward pass that also returns the *embedding*: the activation
    /// entering the final layer. The paper's diversity metric (Eq. 7–8) runs
    /// on these penultimate features.
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    pub fn infer_with_embedding(&self, input: &Matrix) -> (Matrix, Matrix) {
        assert!(!self.layers.is_empty(), "network has no layers");
        let mut x = input.clone();
        for layer in &self.layers[..self.layers.len() - 1] {
            x = layer.infer(&x);
        }
        let embedding = x.clone();
        let logits = self.layers[self.layers.len() - 1].infer(&x);
        (logits, embedding)
    }

    /// Batch-size-1 forward pass: logits and embedding of a single input
    /// row. This is the reference point for micro-batched serving — every
    /// dense layer is a row-independent affine map, so
    /// [`Sequential::infer_with_embedding`] over a stacked batch produces
    /// bit-identical rows to calling this per input (pinned by the
    /// `batched_inference_is_bit_identical_to_single_rows` test).
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    pub fn infer_row(&self, row: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let input = Matrix::from_flat(1, row.len(), row.to_vec());
        let (logits, embedding) = self.infer_with_embedding(&input);
        (logits.as_slice().to_vec(), embedding.as_slice().to_vec())
    }

    /// Parallel inference over row chunks — used for full-pool prediction
    /// where a benchmark holds 10⁵–10⁶ clips. Returns `(logits, embeddings)`
    /// like [`Sequential::infer_with_embedding`].
    pub fn infer_pool(&self, input: &Matrix, chunk_rows: usize) -> (Matrix, Matrix) {
        assert!(!self.layers.is_empty(), "network has no layers");
        let chunk = chunk_rows.max(1);
        let indices: Vec<usize> = (0..input.rows()).step_by(chunk).collect();
        let parts: Vec<(Matrix, Matrix)> = indices
            .par_iter()
            .map(|&start| {
                let end = (start + chunk).min(input.rows());
                let rows: Vec<usize> = (start..end).collect();
                let sub = input.gather_rows(&rows);
                self.infer_with_embedding(&sub)
            })
            .collect();
        // Every chunk runs through the same layers, so the widths are uniform
        // by construction — concatenate the row-major buffers directly.
        let logit_cols = parts.first().map_or(0, |(l, _)| l.cols());
        let embed_cols = parts.first().map_or(0, |(_, e)| e.cols());
        let mut logit_data = Vec::with_capacity(input.rows() * logit_cols);
        let mut embed_data = Vec::with_capacity(input.rows() * embed_cols);
        for (l, e) in &parts {
            logit_data.extend_from_slice(l.as_slice());
            embed_data.extend_from_slice(e.as_slice());
        }
        (
            Matrix::from_flat(input.rows(), logit_cols, logit_data),
            Matrix::from_flat(input.rows(), embed_cols, embed_data),
        )
    }

    /// Training forward pass (caches activations).
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_train(&x);
        }
        x
    }

    /// Backward pass; returns the gradient at the network input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardWithoutForward`] when any layer is missing
    /// its cached activations (no preceding [`Sequential::forward_train`]).
    pub fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Applies accumulated gradients with the optimiser and zeroes them.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        optimizer.begin_step();
        let mut slot = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |weights, grads| {
                optimizer.update(slot, weights, grads);
                for g in grads.iter_mut() {
                    *g = 0.0;
                }
                slot += 1;
            });
        }
    }

    /// One training step on a batch: forward, loss, backward, update.
    /// Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates loss-shape errors; see
    /// [`SoftmaxCrossEntropy::loss_and_grad`].
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        labels: &[usize],
        loss: &SoftmaxCrossEntropy,
        optimizer: &mut dyn Optimizer,
    ) -> Result<f64, NnError> {
        let logits = self.forward_train(input);
        let (value, grad) = loss.loss_and_grad(&logits, labels)?;
        self.backward(&grad)?;
        self.apply_gradients(optimizer);
        Ok(value)
    }

    /// Serialises the architecture tags and weights.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot::capture(&self.layers)
    }

    /// Restores weights from a snapshot taken on an identical architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotMismatch`] when layer kinds, counts, or
    /// buffer shapes differ.
    pub fn load_snapshot(&mut self, snapshot: &NetworkSnapshot) -> Result<(), NnError> {
        snapshot.restore(&mut self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Dense, InitRng, Relu, Sgd};

    fn xor_net(seed: u64) -> Sequential {
        let mut rng = InitRng::seeded(seed, 1.0);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, &mut rng));
        net
    }

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut net = xor_net(42);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::balanced(2);
        let mut opt = Adam::new(0.02);
        let mut last = f64::MAX;
        for _ in 0..500 {
            last = net.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        assert!(last < 0.05, "final loss {last}");
        assert_eq!(net.infer(&x).argmax_rows(), y);
    }

    #[test]
    fn loss_decreases_under_sgd() {
        let mut net = xor_net(7);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::balanced(2);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let first = net.train_batch(&x, &y, &loss, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = net.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn embedding_is_penultimate_width() {
        let net = xor_net(1);
        let (x, _) = xor_data();
        let (logits, embedding) = net.infer_with_embedding(&x);
        assert_eq!(logits.cols(), 2);
        assert_eq!(embedding.cols(), 16);
        assert_eq!(embedding.rows(), 4);
    }

    #[test]
    fn infer_pool_matches_sequential_inference() {
        let net = xor_net(5);
        let rows: Vec<Vec<f32>> = (0..37)
            .map(|i| vec![(i % 3) as f32 * 0.5, (i % 7) as f32 * 0.2])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let (pool_logits, pool_emb) = net.infer_pool(&x, 8);
        let (seq_logits, seq_emb) = net.infer_with_embedding(&x);
        assert_eq!(pool_logits, seq_logits);
        assert_eq!(pool_emb, seq_emb);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut net = xor_net(42);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::balanced(2);
        let mut opt = Adam::new(0.02);
        for _ in 0..100 {
            net.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        let snap = net.snapshot();
        let mut fresh = xor_net(999);
        fresh.load_snapshot(&snap).unwrap();
        assert_eq!(net.infer(&x), fresh.infer(&x));
    }

    #[test]
    fn snapshot_rejects_wrong_architecture() {
        let net = xor_net(1);
        let snap = net.snapshot();
        let mut rng = InitRng::seeded(0, 1.0);
        let mut other = Sequential::new();
        other.push(Dense::new(2, 4, &mut rng));
        assert!(other.load_snapshot(&snap).is_err());
    }

    #[test]
    fn infer_does_not_mutate() {
        let net = xor_net(3);
        let (x, _) = xor_data();
        let a = net.infer(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_inference_is_bit_identical_to_single_rows() {
        // The serving micro-batcher coalesces concurrent requests into one
        // forward pass; this pins the property that makes that safe.
        let net = xor_net(11);
        let rows: Vec<Vec<f32>> = (0..17)
            .map(|i| vec![(i as f32 * 0.37).sin(), (i as f32 * 0.61).cos()])
            .collect();
        let batch = Matrix::from_rows(&rows).unwrap();
        let (logits, embeddings) = net.infer_with_embedding(&batch);
        for (i, row) in rows.iter().enumerate() {
            let (single_logits, single_embedding) = net.infer_row(row);
            let batch_logits: Vec<u32> = logits.row(i).iter().map(|v| v.to_bits()).collect();
            let single_bits: Vec<u32> = single_logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_logits, single_bits, "logits diverge at row {i}");
            let batch_embedding: Vec<u32> = embeddings.row(i).iter().map(|v| v.to_bits()).collect();
            let single_embedding: Vec<u32> = single_embedding.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                batch_embedding, single_embedding,
                "embedding diverges at row {i}"
            );
        }
    }
}
