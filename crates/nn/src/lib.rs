//! A minimal, dependency-free neural-network library for hotspot detection.
//!
//! The DAC 2021 paper trains a small TensorFlow CNN; the Rust deep-learning
//! ecosystem is thin, so this crate implements the required substrate from
//! scratch: dense and convolutional layers, ReLU, softmax cross-entropy with
//! class weighting (hotspot datasets are heavily imbalanced), SGD and Adam
//! optimisers, seedable Gaussian initialisation (`w ~ N(0, σ)` as in
//! Algorithm 2 of the paper), and a mini-batch trainer.
//!
//! The design centres on [`Matrix`] (a batch of row vectors) flowing through
//! a [`Sequential`] stack of [`Layer`]s. Two forward paths exist:
//!
//! * [`Sequential::infer`] — pure, `&self`, safe to call from parallel
//!   threads for pool-scale inference;
//! * [`Sequential::forward_train`] — caches activations for
//!   [`Sequential::backward`].
//!
//! Active learning additionally needs the *penultimate-layer embedding* of
//! every clip (the paper's diversity metric, Eq. 7–8); use
//! [`Sequential::infer_with_embedding`].
//!
//! # Example
//!
//! ```
//! use hotspot_nn::{Sequential, Dense, Relu, Adam, SoftmaxCrossEntropy, Matrix, InitRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = InitRng::seeded(42, 0.1);
//! let mut net = Sequential::new();
//! net.push(Dense::new(2, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, &mut rng));
//!
//! // Learn XOR-ish data.
//! let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]])?;
//! let y = vec![0usize, 0, 1, 1];
//! let loss = SoftmaxCrossEntropy::balanced(2);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..300 {
//!     net.train_batch(&x, &y, &loss, &mut opt)?;
//! }
//! let logits = net.infer(&x);
//! assert_eq!(logits.argmax_rows(), vec![0, 0, 1, 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod conv;
mod dense;
mod dropout;
mod error;
mod init;
mod layer;
mod loss;
mod matrix;
mod network;
mod optim;
mod relu;
mod serialize;
mod trainer;

pub use conv::{Conv2d, MaxPool2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use init::InitRng;
pub use layer::Layer;
pub use loss::SoftmaxCrossEntropy;
pub use matrix::Matrix;
pub use network::Sequential;
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use relu::Relu;
pub use serialize::NetworkSnapshot;
pub use trainer::{TrainConfig, TrainReport, Trainer};
