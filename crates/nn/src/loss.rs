use crate::{Matrix, NnError};

/// Softmax cross-entropy loss over logits, with optional per-class weights.
///
/// Hotspot datasets are heavily imbalanced (Table I of the paper: 2–6 %
/// hotspots), so the loss supports class weighting; [`SoftmaxCrossEntropy::
/// weighted`] scales each sample's loss and gradient by its class weight.
///
/// The backward gradient is computed analytically as
/// `softmax(z) − onehot(y)` (scaled by weight / batch), which is numerically
/// stable via the max-subtraction trick.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxCrossEntropy {
    class_weights: Vec<f32>,
}

impl SoftmaxCrossEntropy {
    /// Uniform weights over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `classes == 0`.
    pub fn balanced(classes: usize) -> Self {
        assert!(classes > 0, "class count must be positive");
        SoftmaxCrossEntropy {
            class_weights: vec![1.0; classes],
        }
    }

    /// Explicit per-class weights.
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or contains a non-positive weight.
    pub fn weighted(weights: Vec<f32>) -> Self {
        assert!(!weights.is_empty(), "weights must not be empty");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "class weights must be positive"
        );
        SoftmaxCrossEntropy {
            class_weights: weights,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_weights.len()
    }

    /// Softmax probabilities of a logit matrix (row-wise).
    pub fn probabilities(logits: &Matrix) -> Matrix {
        let mut out = logits.clone();
        for row in out.as_mut_slice().chunks_exact_mut(logits.cols()) {
            softmax_in_place(row);
        }
        out
    }

    /// Computes the mean weighted loss and the gradient w.r.t. the logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelCountMismatch`] when `labels.len()` differs
    /// from the batch size, [`NnError::LabelOutOfRange`] for a bad label,
    /// [`NnError::ShapeMismatch`] when the logit width differs from the
    /// class count, and [`NnError::EmptyBatch`] for an empty batch.
    pub fn loss_and_grad(
        &self,
        logits: &Matrix,
        labels: &[usize],
    ) -> Result<(f64, Matrix), NnError> {
        if logits.rows() == 0 {
            return Err(NnError::EmptyBatch);
        }
        if labels.len() != logits.rows() {
            return Err(NnError::LabelCountMismatch {
                batch: logits.rows(),
                labels: labels.len(),
            });
        }
        if logits.cols() != self.classes() {
            return Err(NnError::ShapeMismatch {
                op: "cross-entropy",
                left: (logits.rows(), logits.cols()),
                right: (1, self.classes()),
            });
        }
        let n = logits.rows();
        let c = logits.cols();
        let mut grad = logits.clone();
        let mut loss = 0.0f64;
        for (i, &label) in labels.iter().enumerate() {
            if label >= c {
                return Err(NnError::LabelOutOfRange { label, classes: c });
            }
            let row = grad.row_mut(i);
            softmax_in_place(row);
            let weight = self.class_weights[label];
            loss -= (row[label].max(1e-12) as f64).ln() * weight as f64;
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= weight / n as f32;
            }
        }
        Ok((loss / n as f64, grad))
    }
}

/// Numerically stable in-place softmax of one row.
fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn probabilities_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]).unwrap();
        let p = SoftmaxCrossEntropy::probabilities(&logits);
        for row in 0..2 {
            let s: f32 = p.row(row).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn loss_of_perfect_prediction_is_small() {
        let loss = SoftmaxCrossEntropy::balanced(2);
        let logits = Matrix::from_rows(&[vec![20.0, -20.0]]).unwrap();
        let (l, _) = loss.loss_and_grad(&logits, &[0]).unwrap();
        assert!(l < 1e-6);
    }

    #[test]
    fn loss_of_wrong_prediction_is_large() {
        let loss = SoftmaxCrossEntropy::balanced(2);
        let logits = Matrix::from_rows(&[vec![-10.0, 10.0]]).unwrap();
        let (l, _) = loss.loss_and_grad(&logits, &[0]).unwrap();
        assert!(l > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let loss = SoftmaxCrossEntropy::balanced(4);
        let logits = Matrix::from_rows(&[vec![0.0; 4]]).unwrap();
        let (l, _) = loss.loss_and_grad(&logits, &[2]).unwrap();
        assert!((l - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::weighted(vec![1.0, 3.0]);
        let logits = Matrix::from_rows(&[vec![0.4, -0.3], vec![-1.2, 0.7]]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = loss.loss_and_grad(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let mut lp = logits.clone();
                lp.row_mut(r)[c] += eps;
                let mut lm = logits.clone();
                lm.row_mut(r)[c] -= eps;
                let (p, _) = loss.loss_and_grad(&lp, &labels).unwrap();
                let (m, _) = loss.loss_and_grad(&lm, &labels).unwrap();
                let numeric = ((p - m) / (2.0 * eps as f64)) as f32;
                assert!(
                    (numeric - grad.at(r, c)).abs() < 1e-3,
                    "({r},{c}): numeric {numeric} vs analytic {}",
                    grad.at(r, c)
                );
            }
        }
    }

    #[test]
    fn class_weight_scales_gradient() {
        let flat = SoftmaxCrossEntropy::balanced(2);
        let weighted = SoftmaxCrossEntropy::weighted(vec![1.0, 2.0]);
        let logits = Matrix::from_rows(&[vec![0.3, -0.3]]).unwrap();
        let (_, g1) = flat.loss_and_grad(&logits, &[1]).unwrap();
        let (_, g2) = weighted.loss_and_grad(&logits, &[1]).unwrap();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
    }

    #[test]
    fn error_cases() {
        let loss = SoftmaxCrossEntropy::balanced(2);
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert!(matches!(
            loss.loss_and_grad(&logits, &[]),
            Err(NnError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            loss.loss_and_grad(&logits, &[5]),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            loss.loss_and_grad(&Matrix::zeros(0, 2), &[]),
            Err(NnError::EmptyBatch)
        ));
        let wide = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        assert!(matches!(
            loss.loss_and_grad(&wide, &[0]),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_negative_weight() {
        let _ = SoftmaxCrossEntropy::weighted(vec![1.0, -1.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_invariant_to_shift(
            logits in proptest::collection::vec(-10.0f32..10.0, 3),
            shift in -50.0f32..50.0,
        ) {
            let a = Matrix::from_rows(std::slice::from_ref(&logits)).unwrap();
            let shifted: Vec<f32> = logits.iter().map(|v| v + shift).collect();
            let b = Matrix::from_rows(&[shifted]).unwrap();
            let pa = SoftmaxCrossEntropy::probabilities(&a);
            let pb = SoftmaxCrossEntropy::probabilities(&b);
            for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_grad_rows_sum_to_zero(
            logits in proptest::collection::vec(-5.0f32..5.0, 4),
            label in 0usize..2,
        ) {
            // softmax − onehot sums to zero per row (uniform weights).
            let m = Matrix::from_flat(2, 2, logits);
            let loss = SoftmaxCrossEntropy::balanced(2);
            let (_, grad) = loss.loss_and_grad(&m, &[label, 1 - label]).unwrap();
            for r in 0..2 {
                let s: f32 = grad.row(r).iter().sum();
                prop_assert!(s.abs() < 1e-5);
            }
        }
    }
}
