use crate::layer::check_buffers;
use crate::{InitRng, Layer, Matrix, NnError};

/// A fully-connected layer: `y = x · Wᵀ + b`.
///
/// Weights are stored row-major as `out_dim × in_dim`; the layout makes both
/// the forward product and the input-gradient product cache-friendly without
/// explicit transposes.
///
/// ```
/// use hotspot_nn::{Dense, InitRng, Layer, Matrix};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = InitRng::seeded(1, 0.1);
/// let dense = Dense::new(4, 2, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// assert_eq!(dense.infer(&x).cols(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with fan-in-scaled `N(0, σ)` weights and zero
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut InitRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "dense dimensions must be positive"
        );
        Dense {
            in_dim,
            out_dim,
            weights: rng.sample_fan_in(out_dim * in_dim, in_dim),
            bias: vec![0.0; out_dim],
            grad_weights: vec![0.0; out_dim * in_dim],
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Read-only weight view (`out_dim × in_dim`, row-major).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Read-only bias view.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn apply(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_dim,
            "dense layer expected {} inputs, got {}",
            self.in_dim,
            input.cols()
        );
        let w = Matrix::from_flat(self.out_dim, self.in_dim, self.weights.clone());
        // The assert above pins `input.cols() == in_dim`, the only condition
        // `matmul_transpose` checks, so the fallback arm is unreachable.
        let mut out = input
            .matmul_transpose(&w)
            .unwrap_or_else(|_| Matrix::zeros(input.rows(), self.out_dim));
        out.add_row_bias(&self.bias);
        out
    }
}

impl Layer for Dense {
    fn infer(&self, input: &Matrix) -> Matrix {
        self.apply(input)
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let out = self.apply(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let input = self
            .cached_input
            .take()
            .ok_or(NnError::BackwardWithoutForward { layer: "dense" })?;
        // ∂L/∂W = gradᵀ · x   (out_dim × in_dim)
        let gw = grad_output.transpose_matmul(&input)?;
        for (g, &v) in self.grad_weights.iter_mut().zip(gw.as_slice()) {
            *g += v;
        }
        for (g, v) in self.grad_bias.iter_mut().zip(grad_output.column_sums()) {
            *g += v;
        }
        // ∂L/∂x = grad · W  (batch × in_dim)
        let w = Matrix::from_flat(self.out_dim, self.in_dim, self.weights.clone());
        grad_output.matmul(&w)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn kind(&self) -> &'static str {
        "dense"
    }

    fn param_buffers(&self) -> Vec<&[f32]> {
        vec![&self.weights, &self.bias]
    }

    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError> {
        check_buffers("dense", buffers, &[self.weights.len(), self.bias.len()])?;
        self.weights.copy_from_slice(&buffers[0]);
        self.bias.copy_from_slice(&buffers[1]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        let mut rng = InitRng::seeded(3, 0.5);
        Dense::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let d = layer();
        let x = Matrix::zeros(5, 3);
        let y = d.infer(&x);
        assert_eq!((y.rows(), y.cols()), (5, 2));
    }

    #[test]
    fn zero_input_outputs_bias() {
        let mut d = layer();
        d.bias.copy_from_slice(&[1.5, -2.5]);
        let y = d.infer(&Matrix::zeros(2, 3));
        assert_eq!(y.row(0), &[1.5, -2.5]);
        assert_eq!(y.row(1), &[1.5, -2.5]);
    }

    #[test]
    fn infer_matches_forward_train() {
        let mut d = layer();
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3]]).unwrap();
        assert_eq!(d.infer(&x), d.forward_train(&x));
    }

    #[test]
    fn backward_without_forward_is_a_typed_error() {
        let mut d = layer();
        let err = d.backward(&Matrix::zeros(1, 2)).unwrap_err();
        assert!(matches!(
            err,
            NnError::BackwardWithoutForward { layer: "dense" }
        ));
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of ∂(sum of outputs)/∂W and ∂/∂x.
        let mut d = layer();
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 0.2], vec![-0.1, 0.4, 0.9]]).unwrap();
        let y = d.forward_train(&x);
        let ones = Matrix::from_flat(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let grad_in = d.backward(&ones).unwrap();

        let eps = 1e-3f32;
        let sum_out = |d: &Dense, x: &Matrix| -> f32 { d.infer(x).as_slice().iter().sum() };

        // Weight gradient.
        for idx in [0usize, 2, 5] {
            let mut dp = layer();
            dp.weights[idx] += eps;
            let mut dm = layer();
            dm.weights[idx] -= eps;
            let numeric = (sum_out(&dp, &x) - sum_out(&dm, &x)) / (2.0 * eps);
            assert!(
                (numeric - d.grad_weights[idx]).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {}",
                d.grad_weights[idx]
            );
        }

        // Input gradient.
        for (r, c) in [(0usize, 0usize), (1, 2)] {
            let mut xp = x.clone();
            xp.row_mut(r)[c] += eps;
            let mut xm = x.clone();
            xm.row_mut(r)[c] -= eps;
            let numeric = (sum_out(&d, &xp) - sum_out(&d, &xm)) / (2.0 * eps);
            assert!(
                (numeric - grad_in.at(r, c)).abs() < 1e-2,
                "input ({r},{c}): numeric {numeric} vs analytic {}",
                grad_in.at(r, c)
            );
        }
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut d = layer();
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 0.2], vec![-0.1, 0.4, 0.9]]).unwrap();
        let _ = d.forward_train(&x);
        let grad = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        d.backward(&grad).unwrap();
        assert_eq!(d.grad_bias, vec![4.0, 6.0]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = layer();
        let bufs: Vec<Vec<f32>> = a.param_buffers().into_iter().map(<[f32]>::to_vec).collect();
        let mut b = {
            let mut rng = InitRng::seeded(99, 0.5);
            Dense::new(3, 2, &mut rng)
        };
        b.load_params(&bufs).unwrap();
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(a.forward_train(&x), b.infer(&x));
    }

    #[test]
    fn load_params_rejects_bad_shapes() {
        let mut d = layer();
        assert!(d.load_params(&[vec![0.0; 5], vec![0.0; 2]]).is_err());
        assert!(d.load_params(&[vec![0.0; 6]]).is_err());
    }
}
