use crate::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` matrix; rows are batch samples.
///
/// This is the single tensor type of the library — convolutional layers
/// interpret columns as flattened `channels × height × width` volumes.
///
/// ```
/// use hotspot_nn::Matrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// assert_eq!(a.matmul(&b)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::RaggedRows`] when rows differ in width.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, NnError> {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(NnError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows (batch size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // Exact ±0 sparsity skip (bit test, not a tolerance): anything
                // else would change the product.
                if a.to_bits() << 1 == 0 {
                    continue;
                }
                let src = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                op: "transpose_matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // Exact ±0 sparsity skip, same contract as `matmul`.
                if a.to_bits() << 1 == 0 {
                    continue;
                }
                let src = &other.data[i * other.cols..(i + 1) * other.cols];
                let dst = &mut out.data[k * other.cols..(k + 1) * other.cols];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · otherᵀ` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `bias` (length `cols`) to every row.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sum of each column — used for bias gradients.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Index of the maximum entry of each row (ties break to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.data
            .chunks_exact(self.cols)
            .map(|row| {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Gathers the given rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Concatenates two matrices vertically.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols && self.rows != 0 && other.rows != 0 {
            return Err(NnError::ShapeMismatch {
                op: "vstack",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let cols = if self.rows == 0 {
            other.cols
        } else {
            self.cols
        };
        let mut data = Vec::with_capacity((self.rows + other.rows) * cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols,
            data,
        })
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>8.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  … {} more rows", self.rows - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m(&[vec![1.0, 2.0]]);
        let b = m(&[vec![1.0, 2.0]]);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_matmul_equals_explicit() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = m(&[vec![7.0, 8.0], vec![9.0, 10.0]]);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transposed().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_transpose_equals_explicit() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = m(&[vec![7.0, 8.0, 9.0], vec![1.0, 2.0, 3.0]]);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transposed()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        a.add_row_bias(&[10.0, 20.0]);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.column_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn argmax_rows_breaks_ties_first() {
        let a = m(&[vec![1.0, 1.0], vec![0.0, 2.0], vec![5.0, -1.0]]);
        assert_eq!(a.argmax_rows(), vec![0, 1, 0]);
    }

    #[test]
    fn gather_and_vstack() {
        let a = m(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[3.0, 1.0]);
        let s = g.vstack(&a).unwrap();
        assert_eq!(s.rows(), 5);
    }

    #[test]
    fn vstack_with_empty() {
        let empty = Matrix::zeros(0, 0);
        let a = m(&[vec![1.0, 2.0]]);
        let s = empty.vstack(&a).unwrap();
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 2);
    }

    #[test]
    fn display_mentions_shape() {
        let a = Matrix::zeros(2, 3);
        assert!(a.to_string().contains("2x3"));
    }

    proptest! {
        #[test]
        fn prop_matmul_associative_with_identity(
            vals in proptest::collection::vec(-10.0f32..10.0, 12),
        ) {
            let a = Matrix::from_flat(3, 4, vals);
            let mut eye = Matrix::zeros(4, 4);
            for i in 0..4 { eye.as_mut_slice()[i * 4 + i] = 1.0; }
            prop_assert_eq!(a.matmul(&eye).unwrap(), a);
        }

        #[test]
        fn prop_transpose_involutive(vals in proptest::collection::vec(-5.0f32..5.0, 12)) {
            let a = Matrix::from_flat(3, 4, vals);
            prop_assert_eq!(a.transposed().transposed(), a);
        }
    }
}
