use crate::{Matrix, NnError};

/// A differentiable network layer.
///
/// Layers expose two forward paths: [`Layer::infer`] is pure and thread-safe
/// for pool-scale prediction, while [`Layer::forward_train`] caches whatever
/// [`Layer::backward`] later needs. `backward` consumes the cached state,
/// accumulates parameter gradients internally, and returns the gradient with
/// respect to the layer input.
///
/// The trait is object-safe; networks hold `Box<dyn Layer>`.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Pure forward pass (no caching); usable concurrently via `&self`.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Forward pass that caches activations for the next [`Layer::backward`].
    fn forward_train(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: consumes the cache from the last
    /// [`Layer::forward_train`], accumulates parameter gradients, and returns
    /// `∂loss/∂input`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardWithoutForward`] when called without a
    /// preceding `forward_train`, and [`NnError::ShapeMismatch`] when the
    /// output gradient does not match the cached activations.
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError>;

    /// Visits each (parameter, gradient) buffer pair, in a stable order.
    /// Layers without parameters do nothing.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Short architecture tag used by snapshots (e.g. `"dense"`).
    fn kind(&self) -> &'static str;

    /// Read-only views of the parameter buffers, in the same order as
    /// [`Layer::visit_params`].
    fn param_buffers(&self) -> Vec<&[f32]>;

    /// Restores parameter buffers saved by [`Layer::param_buffers`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SnapshotMismatch`] when counts or lengths differ.
    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError>;
}

/// Checks a snapshot buffer list against a layer's expectations; shared by
/// the concrete `load_params` implementations.
pub(crate) fn check_buffers(
    kind: &str,
    buffers: &[Vec<f32>],
    expected: &[usize],
) -> Result<(), NnError> {
    if buffers.len() != expected.len() {
        return Err(NnError::SnapshotMismatch {
            detail: format!(
                "{kind}: expected {} parameter buffers, snapshot has {}",
                expected.len(),
                buffers.len()
            ),
        });
    }
    for (i, (buf, &len)) in buffers.iter().zip(expected).enumerate() {
        if buf.len() != len {
            return Err(NnError::SnapshotMismatch {
                detail: format!(
                    "{kind}: buffer {i} expected length {len}, snapshot has {}",
                    buf.len()
                ),
            });
        }
    }
    Ok(())
}
