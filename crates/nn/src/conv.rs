use crate::layer::check_buffers;
use crate::{InitRng, Layer, Matrix, NnError};

/// A 2-D convolution layer with stride 1 and "same" zero padding.
///
/// Inputs are matrices whose columns are flattened `channels × height ×
/// width` volumes (channel-major). Spatial dimensions are fixed at
/// construction, as is usual for fixed-size clip classifiers.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    height: usize,
    width: usize,
    weights: Vec<f32>, // [out_c][in_c][k][k]
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Matrix>,
}

impl Conv2d {
    /// Creates a convolution over `height × width` feature maps.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or the kernel is even (same-padding
    /// needs an odd kernel).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        height: usize,
        width: usize,
        rng: &mut InitRng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && height > 0 && width > 0,
            "conv dimensions must be positive"
        );
        assert!(
            kernel % 2 == 1,
            "same-padding convolution needs an odd kernel"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            height,
            width,
            weights: rng.sample_fan_in(out_channels * fan_in, fan_in),
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; out_channels * fan_in],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Flattened input volume size.
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    /// Flattened output volume size (same spatial dims, `out_channels`).
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.height * self.width
    }

    fn apply(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_dim(), "conv input size mismatch");
        record_conv2d_kernel(self, input.rows());
        let (h, w, k) = (self.height, self.width, self.kernel);
        let pad = k / 2;
        let plane = h * w;
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        for b in 0..input.rows() {
            let x = input.row(b);
            let y = out.row_mut(b);
            for oc in 0..self.out_channels {
                let w_oc = &self.weights
                    [oc * self.in_channels * k * k..(oc + 1) * self.in_channels * k * k];
                let out_plane = &mut y[oc * plane..(oc + 1) * plane];
                for (i, v) in out_plane.iter_mut().enumerate() {
                    *v = self.bias[oc];
                    let (oy, ox) = (i / w, i % w);
                    let mut acc = 0.0f32;
                    for ic in 0..self.in_channels {
                        let x_plane = &x[ic * plane..(ic + 1) * plane];
                        let w_ic = &w_oc[ic * k * k..(ic + 1) * k * k];
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += w_ic[ky * k + kx] * x_plane[iy as usize * w + ix as usize];
                            }
                        }
                    }
                    *v += acc;
                }
            }
        }
        out
    }
}

/// Books one conv2d forward pass into the `kernel.conv2d.*` performance
/// counters (ROADMAP item 1 hot loop). FLOPs count the nominal interior
/// multiply–add nest (2 per tap); bytes count input, weight, and output
/// traffic once each. One counter update per call, so the accounting is
/// invisible next to the O(batch · C_out · H · W · C_in · k²) loop itself.
fn record_conv2d_kernel(conv: &Conv2d, batch: usize) {
    use hotspot_telemetry::{counter, names};
    let elements = (batch * conv.out_dim()) as u64;
    let taps = (conv.in_channels * conv.kernel * conv.kernel) as u64;
    counter(names::KERNEL_CONV2D_CALLS).incr();
    counter(names::KERNEL_CONV2D_ELEMENTS).add(elements);
    counter(names::KERNEL_CONV2D_FLOPS).add(elements * taps * 2);
    counter(names::KERNEL_CONV2D_BYTES).add(
        4 * (batch * (conv.in_dim() + conv.out_dim()) + conv.weights.len() + conv.bias.len())
            as u64,
    );
}

impl Layer for Conv2d {
    fn infer(&self, input: &Matrix) -> Matrix {
        self.apply(input)
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let out = self.apply(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let input = self
            .cached_input
            .take()
            .ok_or(NnError::BackwardWithoutForward { layer: "conv2d" })?;
        if grad_output.rows() != input.rows() || grad_output.cols() != self.out_dim() {
            return Err(NnError::ShapeMismatch {
                op: "conv2d backward",
                left: (grad_output.rows(), grad_output.cols()),
                right: (input.rows(), self.out_dim()),
            });
        }
        let (h, w, k) = (self.height, self.width, self.kernel);
        let pad = k / 2;
        let plane = h * w;
        let mut grad_in = Matrix::zeros(input.rows(), self.in_dim());
        for b in 0..input.rows() {
            let x = input.row(b);
            let g = grad_output.row(b);
            let gi = grad_in.row_mut(b);
            for oc in 0..self.out_channels {
                let g_plane = &g[oc * plane..(oc + 1) * plane];
                self.grad_bias[oc] += g_plane.iter().sum::<f32>();
                for ic in 0..self.in_channels {
                    let x_plane = &x[ic * plane..(ic + 1) * plane];
                    let gi_plane = &mut gi[ic * plane..(ic + 1) * plane];
                    let w_base = (oc * self.in_channels + ic) * k * k;
                    for oy in 0..h {
                        for ox in 0..w {
                            let go = g_plane[oy * w + ox];
                            // Exact ±0 skip (bit test): ReLU upstream zeroes
                            // most of the gradient; a tolerance would drop
                            // real signal.
                            if go.to_bits() << 1 == 0 {
                                continue;
                            }
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = iy as usize * w + ix as usize;
                                    self.grad_weights[w_base + ky * k + kx] += go * x_plane[xi];
                                    gi_plane[xi] += go * self.weights[w_base + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn param_buffers(&self) -> Vec<&[f32]> {
        vec![&self.weights, &self.bias]
    }

    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError> {
        check_buffers("conv2d", buffers, &[self.weights.len(), self.bias.len()])?;
        self.weights.copy_from_slice(&buffers[0]);
        self.bias.copy_from_slice(&buffers[1]);
        Ok(())
    }
}

/// A 2 × 2 max-pooling layer with stride 2.
///
/// Spatial dimensions must be even. Columns are flattened channel-major
/// volumes, matching [`Conv2d`].
#[derive(Debug)]
pub struct MaxPool2d {
    channels: usize,
    height: usize,
    width: usize,
    argmax: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a pool over `channels` maps of `height × width`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are zero or odd.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "pool dimensions must be positive"
        );
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2),
            "2x2 pooling needs even spatial dimensions"
        );
        MaxPool2d {
            channels,
            height,
            width,
            argmax: None,
        }
    }

    /// Flattened input volume size.
    pub fn in_dim(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Flattened output volume size.
    pub fn out_dim(&self) -> usize {
        self.channels * (self.height / 2) * (self.width / 2)
    }

    fn apply(&self, input: &Matrix) -> (Matrix, Vec<usize>) {
        assert_eq!(input.cols(), self.in_dim(), "pool input size mismatch");
        let (h, w) = (self.height, self.width);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        let mut argmax = vec![0usize; input.rows() * self.out_dim()];
        for b in 0..input.rows() {
            let x = input.row(b);
            let y = out.row_mut(b);
            for c in 0..self.channels {
                let x_plane = &x[c * h * w..(c + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = (2 * oy + dy) * w + 2 * ox + dx;
                                if x_plane[idx] > best {
                                    best = x_plane[idx];
                                    best_idx = c * h * w + idx;
                                }
                            }
                        }
                        let o = c * oh * ow + oy * ow + ox;
                        y[o] = best;
                        argmax[b * self.out_dim() + o] = best_idx;
                    }
                }
            }
        }
        (out, argmax)
    }
}

impl Layer for MaxPool2d {
    fn infer(&self, input: &Matrix) -> Matrix {
        self.apply(input).0
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let (out, argmax) = self.apply(input);
        self.argmax = Some(argmax);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let argmax = self
            .argmax
            .take()
            .ok_or(NnError::BackwardWithoutForward { layer: "maxpool2d" })?;
        let od = self.out_dim();
        if grad_output.cols() != od || grad_output.rows() * od != argmax.len() {
            return Err(NnError::ShapeMismatch {
                op: "maxpool2d backward",
                left: (grad_output.rows(), grad_output.cols()),
                right: (argmax.len() / od.max(1), od),
            });
        }
        let mut grad_in = Matrix::zeros(grad_output.rows(), self.in_dim());
        for b in 0..grad_output.rows() {
            let g = grad_output.row(b);
            let gi = grad_in.row_mut(b);
            for (o, &src) in argmax[b * od..(b + 1) * od].iter().enumerate() {
                gi[src] += g[o];
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }

    fn param_buffers(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError> {
        if buffers.is_empty() {
            Ok(())
        } else {
            Err(NnError::SnapshotMismatch {
                detail: format!(
                    "maxpool2d has no parameters, snapshot has {}",
                    buffers.len()
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conv2d {
        let mut rng = InitRng::seeded(11, 0.5);
        Conv2d::new(1, 2, 3, 4, 4, &mut rng)
    }

    #[test]
    fn conv_output_shape() {
        let c = conv();
        let x = Matrix::zeros(3, 16);
        let y = c.infer(&x);
        assert_eq!((y.rows(), y.cols()), (3, 32));
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = InitRng::seeded(1, 0.1);
        let mut c = Conv2d::new(1, 1, 3, 4, 4, &mut rng);
        // Centre-tap identity kernel.
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        c.load_params(&[w, vec![0.0]]).unwrap();
        let x = Matrix::from_rows(&[(0..16).map(|i| i as f32).collect::<Vec<_>>()]).unwrap();
        assert_eq!(c.infer(&x), x);
    }

    #[test]
    fn conv_numerical_gradient_check() {
        let mut c = conv();
        let x = Matrix::from_rows(&[(0..16)
            .map(|i| ((i * 7 % 5) as f32 - 2.0) / 3.0)
            .collect::<Vec<_>>()])
        .unwrap();
        let y = c.forward_train(&x);
        let ones = Matrix::from_flat(1, y.cols(), vec![1.0; y.cols()]);
        let grad_in = c.backward(&ones).unwrap();

        let eps = 1e-2f32;
        let sum_out = |c: &Conv2d, x: &Matrix| -> f32 { c.infer(x).as_slice().iter().sum() };

        for idx in [0usize, 4, 9, 17] {
            let mut cp = conv();
            cp.weights[idx] += eps;
            let mut cm = conv();
            cm.weights[idx] -= eps;
            let numeric = (sum_out(&cp, &x) - sum_out(&cm, &x)) / (2.0 * eps);
            assert!(
                (numeric - c.grad_weights[idx]).abs() < 0.05,
                "weight {idx}: numeric {numeric} vs analytic {}",
                c.grad_weights[idx]
            );
        }
        for i in [0usize, 5, 15] {
            let mut xp = x.clone();
            xp.row_mut(0)[i] += eps;
            let mut xm = x.clone();
            xm.row_mut(0)[i] -= eps;
            let numeric = (sum_out(&c, &xp) - sum_out(&c, &xm)) / (2.0 * eps);
            assert!(
                (numeric - grad_in.at(0, i)).abs() < 0.05,
                "input {i}: numeric {numeric} vs analytic {}",
                grad_in.at(0, i)
            );
        }
    }

    #[test]
    fn pool_takes_maxima() {
        let p = MaxPool2d::new(1, 4, 4);
        let x = Matrix::from_rows(&[vec![
            1.0, 2.0, 3.0, 4.0, //
            5.0, 6.0, 7.0, 8.0, //
            9.0, 1.0, 2.0, 3.0, //
            4.0, 5.0, 6.0, 7.0,
        ]])
        .unwrap();
        let y = p.infer(&x);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(1, 2, 2);
        let x = Matrix::from_rows(&[vec![1.0, 9.0, 3.0, 4.0]]).unwrap();
        let _ = p.forward_train(&x);
        let g = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let gi = p.backward(&g).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_without_forward_is_a_typed_error() {
        let mut c = conv();
        assert!(matches!(
            c.backward(&Matrix::zeros(1, c.out_dim())).unwrap_err(),
            NnError::BackwardWithoutForward { layer: "conv2d" }
        ));
        let mut p = MaxPool2d::new(1, 2, 2);
        assert!(matches!(
            p.backward(&Matrix::zeros(1, 1)).unwrap_err(),
            NnError::BackwardWithoutForward { layer: "maxpool2d" }
        ));
    }

    #[test]
    #[should_panic(expected = "even spatial dimensions")]
    fn pool_rejects_odd_dims() {
        let _ = MaxPool2d::new(1, 3, 4);
    }

    #[test]
    fn conv_pool_stack_dims_compose() {
        let mut rng = InitRng::seeded(5, 0.2);
        let c = Conv2d::new(1, 4, 3, 8, 8, &mut rng);
        let p = MaxPool2d::new(4, 8, 8);
        assert_eq!(c.out_dim(), p.in_dim());
        let x = Matrix::zeros(2, c.in_dim());
        let y = p.infer(&c.infer(&x));
        assert_eq!(y.cols(), p.out_dim());
    }
}
