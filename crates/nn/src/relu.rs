use crate::{Layer, Matrix, NnError};

/// Rectified linear unit activation: `y = max(x, 0)` element-wise.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates the activation layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn infer(&self, input: &Matrix) -> Matrix {
        let data = input.as_slice().iter().map(|&v| v.max(0.0)).collect();
        Matrix::from_flat(input.rows(), input.cols(), data)
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        self.mask = Some(input.as_slice().iter().map(|&v| v > 0.0).collect());
        self.infer(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::BackwardWithoutForward { layer: "relu" })?;
        if mask.len() != grad_output.as_slice().len() {
            return Err(NnError::ShapeMismatch {
                op: "relu backward",
                left: (grad_output.rows(), grad_output.cols()),
                right: (1, mask.len()),
            });
        }
        let data = grad_output
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Matrix::from_flat(
            grad_output.rows(),
            grad_output.cols(),
            data,
        ))
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn kind(&self) -> &'static str {
        "relu"
    }

    fn param_buffers(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError> {
        if buffers.is_empty() {
            Ok(())
        } else {
            Err(NnError::SnapshotMismatch {
                detail: format!("relu has no parameters, snapshot has {}", buffers.len()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives() {
        let relu = Relu::new();
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 2.5]]).unwrap();
        assert_eq!(relu.infer(&x).as_slice(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn gradient_gated_by_sign() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[vec![-1.0, 3.0]]).unwrap();
        let _ = relu.forward_train(&x);
        let g = Matrix::from_rows(&[vec![5.0, 7.0]]).unwrap();
        assert_eq!(relu.backward(&g).unwrap().as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // The subgradient at exactly zero is taken as 0.
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let _ = relu.forward_train(&x);
        let g = Matrix::from_rows(&[vec![4.0]]).unwrap();
        assert_eq!(relu.backward(&g).unwrap().as_slice(), &[0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(matches!(
            relu.backward(&Matrix::zeros(1, 1)).unwrap_err(),
            NnError::BackwardWithoutForward { layer: "relu" }
        ));
    }
}
