use std::collections::BTreeMap;

/// A first-order optimiser updating parameter buffers from gradients.
///
/// Networks call [`Optimizer::update`] once per parameter buffer per step,
/// identified by a stable `slot` index so stateful optimisers (momentum,
/// Adam moments) can keep per-buffer state. Gradients are zeroed by the
/// caller after the step.
pub trait Optimizer: std::fmt::Debug {
    /// Marks the beginning of an optimisation step (e.g. advances Adam's
    /// bias-correction clock).
    fn begin_step(&mut self);

    /// Applies one update to the parameter buffer `weights` in place.
    fn update(&mut self, slot: usize, weights: &mut [f32], grads: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: BTreeMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive learning rate or momentum outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, slot: usize, weights: &mut [f32], grads: &[f32]) {
        assert_eq!(weights.len(), grads.len(), "weight/grad length mismatch");
        if self.momentum <= 0.0 {
            for (w, &g) in weights.iter_mut().zip(grads) {
                *w -= (self.lr as f32) * g;
            }
            return;
        }
        let velocity = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; weights.len()]);
        assert_eq!(
            velocity.len(),
            weights.len(),
            "slot reused with a different size"
        );
        for ((w, v), &g) in weights.iter_mut().zip(velocity.iter_mut()).zip(grads) {
            *v = (self.momentum as f32) * *v + g;
            *w -= (self.lr as f32) * *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimiser (Kingma & Ba 2015) with bias correction and optional
/// decoupled weight decay (AdamW; Loshchilov & Hutter 2019).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    weight_decay: f64,
    step: u64,
    moments: BTreeMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with the given learning rate and standard β₁ = 0.9, β₂ = 0.999.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            step: 0,
            moments: BTreeMap::new(),
        }
    }

    /// Adam with decoupled weight decay: each step additionally shrinks
    /// weights by `lr × decay` — the regulariser that tames over-fitting
    /// when the labelled set is a few dozen clips.
    ///
    /// # Panics
    ///
    /// Panics when `lr` is not positive or `decay` is negative.
    pub fn with_weight_decay(lr: f64, decay: f64) -> Self {
        assert!(
            decay.is_finite() && decay >= 0.0,
            "weight decay must be non-negative"
        );
        let mut adam = Adam::new(lr);
        adam.weight_decay = decay;
        adam
    }

    /// The decoupled weight-decay coefficient.
    pub fn weight_decay(&self) -> f64 {
        self.weight_decay
    }

    /// Captures the mutable optimiser state (bias-correction clock and
    /// per-slot moment vectors). Hyper-parameters are not included — they
    /// are rebuilt in code, exactly like network architecture.
    pub fn state(&self) -> AdamState {
        AdamState {
            step: self.step,
            moments: self
                .moments
                .iter()
                .map(|(&slot, (m, v))| (slot, m.clone(), v.clone()))
                .collect(),
        }
    }

    /// Replaces the mutable optimiser state with a capture from
    /// [`Self::state`], resuming training exactly where it left off.
    pub fn restore_state(&mut self, state: &AdamState) {
        self.step = state.step;
        self.moments = state
            .moments
            .iter()
            .map(|(slot, m, v)| (*slot, (m.clone(), v.clone())))
            .collect();
    }
}

/// Mutable [`Adam`] state captured by [`Adam::state`]: the step clock plus
/// `(slot, first moment, second moment)` triples in ascending slot order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdamState {
    /// Bias-correction step count.
    pub step: u64,
    /// Per-slot moment vectors, ascending by slot.
    pub moments: Vec<(usize, Vec<f32>, Vec<f32>)>,
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.step += 1;
    }

    fn update(&mut self, slot: usize, weights: &mut [f32], grads: &[f32]) {
        assert_eq!(weights.len(), grads.len(), "weight/grad length mismatch");
        let t = self.step.max(1);
        let (m, v) = self
            .moments
            .entry(slot)
            .or_insert_with(|| (vec![0.0; weights.len()], vec![0.0; weights.len()]));
        assert_eq!(m.len(), weights.len(), "slot reused with a different size");
        let bc1 = 1.0 - self.beta1.powi(t as i32);
        let bc2 = 1.0 - self.beta2.powi(t as i32);
        for i in 0..weights.len() {
            let g = grads[i] as f64;
            let mi = self.beta1 * m[i] as f64 + (1.0 - self.beta1) * g;
            let vi = self.beta2 * v[i] as f64 + (1.0 - self.beta2) * g * g;
            m[i] = mi as f32;
            v[i] = vi as f32;
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            let mut w = weights[i] as f64;
            w -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            if self.weight_decay > 0.0 {
                w -= self.lr * self.weight_decay * weights[i] as f64;
            }
            weights[i] = w as f32;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimise f(w) = (w - 3)², gradient 2(w - 3).
        let mut w = [0.0f32];
        for _ in 0..steps {
            opt.begin_step();
            let g = [2.0 * (w[0] - 3.0)];
            opt.update(0, &mut w, &g);
        }
        w[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.01);
        let mut momentum = Sgd::with_momentum(0.01, 0.9);
        let w_plain = quadratic_descent(&mut plain, 30);
        let w_momentum = quadratic_descent(&mut momentum, 30);
        assert!((w_momentum - 3.0).abs() < (w_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr * sign(g).
        let mut opt = Adam::new(0.1);
        opt.begin_step();
        let mut w = [0.0f32];
        opt.update(0, &mut w, &[0.5]);
        assert!((w[0] + 0.1).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Adam::new(0.1);
        opt.begin_step();
        let mut a = [0.0f32];
        let mut b = [0.0f32, 0.0];
        opt.update(0, &mut a, &[1.0]);
        opt.update(1, &mut b, &[1.0, -1.0]);
        assert!(a[0] < 0.0);
        assert!(b[0] < 0.0 && b[1] > 0.0);
    }

    #[test]
    fn weight_decay_shrinks_idle_weights() {
        // With zero gradient, decoupled decay still pulls weights to zero.
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        let mut w = [4.0f32];
        for _ in 0..100 {
            opt.begin_step();
            opt.update(0, &mut w, &[0.0]);
        }
        assert!(w[0].abs() < 0.1, "w = {}", w[0]);
    }

    #[test]
    fn zero_decay_matches_plain_adam() {
        let mut plain = Adam::new(0.1);
        let mut decayed = Adam::with_weight_decay(0.1, 0.0);
        let mut a = [1.0f32];
        let mut b = [1.0f32];
        for _ in 0..20 {
            plain.begin_step();
            decayed.begin_step();
            plain.update(0, &mut a, &[0.3]);
            decayed.update(0, &mut b, &[0.3]);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_decay() {
        let _ = Adam::with_weight_decay(0.1, -1.0);
    }

    #[test]
    fn adam_state_round_trip_resumes_identically() {
        // Train two optimisers in lock-step, capture/restore one mid-way,
        // and check the trajectories stay identical afterwards.
        let mut reference = Adam::new(0.1);
        let mut w_ref = [1.0f32, -2.0];
        for _ in 0..7 {
            reference.begin_step();
            let g = [w_ref[0] * 0.5, w_ref[1] * 0.5];
            reference.update(0, &mut w_ref, &g);
        }
        let state = reference.state();
        let mut restored = Adam::new(0.1);
        restored.restore_state(&state);
        assert_eq!(restored.state(), state);
        let mut w_restored = w_ref;
        for _ in 0..7 {
            reference.begin_step();
            restored.begin_step();
            let g_ref = [w_ref[0] * 0.5, w_ref[1] * 0.5];
            let g_res = [w_restored[0] * 0.5, w_restored[1] * 0.5];
            reference.update(0, &mut w_ref, &g_ref);
            restored.update(0, &mut w_restored, &g_res);
        }
        assert_eq!(w_ref, w_restored);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Adam::new(0.0);
    }
}
