use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Seedable Gaussian weight initialiser.
///
/// Algorithm 2 of the paper initialises the model as `w ~ N(0, σ)`; this type
/// reproduces that with a deterministic stream so experiments are exactly
/// repeatable across runs and platforms.
///
/// ```
/// use hotspot_nn::InitRng;
/// let mut a = InitRng::seeded(7, 0.1);
/// let mut b = InitRng::seeded(7, 0.1);
/// assert_eq!(a.sample(), b.sample());
/// ```
#[derive(Debug, Clone)]
pub struct InitRng {
    rng: ChaCha8Rng,
    sigma: f64,
}

impl InitRng {
    /// Creates an initialiser drawing from `N(0, sigma²)` with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is not finite and positive.
    pub fn seeded(seed: u64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "init sigma must be positive, got {sigma}"
        );
        InitRng {
            rng: ChaCha8Rng::seed_from_u64(seed),
            sigma,
        }
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one `N(0, σ²)` sample (Box–Muller transform).
    pub fn sample(&mut self) -> f32 {
        // Box–Muller: u1 in (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (z * self.sigma) as f32
    }

    /// Fills a buffer with `N(0, σ²)` samples.
    pub fn fill(&mut self, buf: &mut [f32]) {
        for v in buf {
            *v = self.sample();
        }
    }

    /// Draws `n` samples scaled for a fan-in of `fan_in` (He-style scaling on
    /// top of the base σ) — keeps deep stacks trainable while preserving the
    /// seeded N(0, σ) contract for σ = 1.
    pub fn sample_fan_in(&mut self, n: usize, fan_in: usize) -> Vec<f32> {
        let scale = (2.0 / fan_in.max(1) as f64).sqrt();
        (0..n)
            .map(|_| (self.sample() as f64 * scale) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = InitRng::seeded(123, 0.5);
        let mut b = InitRng::seeded(123, 0.5);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = InitRng::seeded(1, 0.5);
        let mut b = InitRng::seeded(2, 0.5);
        let same = (0..50).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 5);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let mut rng = InitRng::seeded(7, 0.3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.3).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn fan_in_scaling_shrinks_variance() {
        let mut rng = InitRng::seeded(7, 1.0);
        let wide = rng.sample_fan_in(5000, 1000);
        let var = wide.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / wide.len() as f64;
        // Expect roughly 2/1000.
        assert!(var < 0.01, "var {var}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_zero_sigma() {
        let _ = InitRng::seeded(0, 0.0);
    }
}
