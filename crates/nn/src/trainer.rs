use crate::{Matrix, NnError, Optimizer, Sequential, SoftmaxCrossEntropy};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mini-batch training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the final batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Seed for per-epoch shuffling.
    pub shuffle_seed: u64,
    /// Stop early when an epoch's mean loss falls below this value.
    pub loss_target: Option<f64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            shuffle_seed: 0,
            loss_target: None,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f64>,
    /// Whether the run stopped early at the loss target.
    pub converged_early: bool,
}

impl TrainReport {
    /// Loss of the final epoch, or NaN when zero epochs trained. NaN flows
    /// into the caller's non-finite-loss handling (rollback) rather than
    /// panicking mid-campaign.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Deterministic mini-batch trainer with per-epoch shuffling.
///
/// ```
/// use hotspot_nn::{Trainer, TrainConfig, Sequential, Dense, Relu, InitRng,
///                  Adam, SoftmaxCrossEntropy, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = InitRng::seeded(0, 0.5);
/// let mut net = Sequential::new();
/// net.push(Dense::new(1, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, &mut rng));
///
/// let x = Matrix::from_rows(&[vec![-1.0], vec![-0.5], vec![0.5], vec![1.0]])?;
/// let y = vec![0usize, 0, 1, 1];
/// let trainer = Trainer::new(TrainConfig { epochs: 100, ..TrainConfig::default() });
/// let report = trainer.fit(
///     &mut net, &x, &y,
///     &SoftmaxCrossEntropy::balanced(2),
///     &mut Adam::new(0.05),
/// )?;
/// assert!(report.final_loss() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `epochs` or `batch_size` is zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "epoch count must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyBatch`] for an empty training set and
    /// propagates shape errors from the loss.
    pub fn fit(
        &self,
        net: &mut Sequential,
        x: &Matrix,
        labels: &[usize],
        loss: &SoftmaxCrossEntropy,
        optimizer: &mut dyn Optimizer,
    ) -> Result<TrainReport, NnError> {
        if x.rows() == 0 {
            return Err(NnError::EmptyBatch);
        }
        if labels.len() != x.rows() {
            return Err(NnError::LabelCountMismatch {
                batch: x.rows(),
                labels: labels.len(),
            });
        }
        let _train_span = hotspot_telemetry::span(hotspot_telemetry::names::SPAN_NN_TRAIN)
            .with("rows", x.rows() as u64)
            .with("epochs", self.config.epochs as u64);
        let epoch_counter = hotspot_telemetry::counter(hotspot_telemetry::names::NN_TRAIN_EPOCHS);
        let loss_histogram = hotspot_telemetry::histogram(hotspot_telemetry::names::NN_TRAIN_LOSS);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut converged_early = false;
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let bx = x.gather_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                total += net.train_batch(&bx, &by, loss, optimizer)?;
                batches += 1;
            }
            let mean = total / batches.max(1) as f64;
            epoch_counter.incr();
            loss_histogram.record(mean);
            epoch_losses.push(mean);
            if let Some(target) = self.config.loss_target {
                if mean < target {
                    converged_early = true;
                    break;
                }
            }
        }
        hotspot_telemetry::debug(
            "nn.trainer",
            "training finished",
            &[
                ("epochs_run", (epoch_losses.len() as u64).into()),
                (
                    "final_loss",
                    epoch_losses.last().copied().unwrap_or(f64::NAN).into(),
                ),
                ("converged_early", converged_early.into()),
            ],
        );
        Ok(TrainReport {
            epoch_losses,
            converged_early,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Dense, InitRng, Relu};

    fn net(seed: u64) -> Sequential {
        let mut rng = InitRng::seeded(seed, 0.5);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 12, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(12, 2, &mut rng));
        net
    }

    fn ring_data() -> (Matrix, Vec<usize>) {
        // Inner points class 0, outer ring class 1.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let angle = i as f64 * 0.157;
            let r = if i % 2 == 0 { 0.3 } else { 1.2 };
            rows.push(vec![(r * angle.cos()) as f32, (r * angle.sin()) as f32]);
            labels.push(i % 2);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fit_reduces_loss() {
        let (x, y) = ring_data();
        let mut model = net(4);
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 8,
            ..TrainConfig::default()
        });
        let report = trainer
            .fit(
                &mut model,
                &x,
                &y,
                &SoftmaxCrossEntropy::balanced(2),
                &mut Adam::new(0.02),
            )
            .unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
        assert!(report.final_loss() < 0.2, "loss {}", report.final_loss());
    }

    #[test]
    fn early_stop_at_target() {
        let (x, y) = ring_data();
        let mut model = net(4);
        let trainer = Trainer::new(TrainConfig {
            epochs: 500,
            batch_size: 8,
            loss_target: Some(0.3),
            ..TrainConfig::default()
        });
        let report = trainer
            .fit(
                &mut model,
                &x,
                &y,
                &SoftmaxCrossEntropy::balanced(2),
                &mut Adam::new(0.02),
            )
            .unwrap();
        assert!(report.converged_early);
        assert!(report.epoch_losses.len() < 500);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = ring_data();
        let loss = SoftmaxCrossEntropy::balanced(2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 8,
            shuffle_seed: 9,
            ..TrainConfig::default()
        });
        let mut a = net(4);
        let mut b = net(4);
        let ra = trainer
            .fit(&mut a, &x, &y, &loss, &mut Adam::new(0.02))
            .unwrap();
        let rb = trainer
            .fit(&mut b, &x, &y, &loss, &mut Adam::new(0.02))
            .unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn rejects_empty_training_set() {
        let mut model = net(4);
        let trainer = Trainer::new(TrainConfig::default());
        let err = trainer
            .fit(
                &mut model,
                &Matrix::zeros(0, 2),
                &[],
                &SoftmaxCrossEntropy::balanced(2),
                &mut Adam::new(0.01),
            )
            .unwrap_err();
        assert!(matches!(err, NnError::EmptyBatch));
    }

    #[test]
    fn rejects_label_mismatch() {
        let mut model = net(4);
        let trainer = Trainer::new(TrainConfig::default());
        let x = Matrix::zeros(3, 2);
        let err = trainer
            .fit(
                &mut model,
                &x,
                &[0],
                &SoftmaxCrossEntropy::balanced(2),
                &mut Adam::new(0.01),
            )
            .unwrap_err();
        assert!(matches!(err, NnError::LabelCountMismatch { .. }));
    }
}
