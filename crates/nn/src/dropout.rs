use crate::{Layer, Matrix, NnError};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1 / (1 − rate)`;
/// inference is the identity, so calibrated probabilities stay comparable
/// between training and detection passes.
///
/// The mask stream is seeded, keeping whole experiment runs bit-exact.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must lie in [0, 1), got {rate}"
        );
        Dropout {
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn infer(&self, input: &Matrix) -> Matrix {
        input.clone()
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        if self.rate <= 0.0 {
            self.mask = Some(vec![1.0; input.as_slice().len()]);
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.as_slice().len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.rate {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = input
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&v, &m)| v * m)
            .collect();
        self.mask = Some(mask);
        Matrix::from_flat(input.rows(), input.cols(), data)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::BackwardWithoutForward { layer: "dropout" })?;
        if mask.len() != grad_output.as_slice().len() {
            return Err(NnError::ShapeMismatch {
                op: "dropout backward",
                left: (grad_output.rows(), grad_output.cols()),
                right: (1, mask.len()),
            });
        }
        let data = grad_output
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| g * m)
            .collect();
        Ok(Matrix::from_flat(
            grad_output.rows(),
            grad_output.cols(),
            data,
        ))
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn kind(&self) -> &'static str {
        "dropout"
    }

    fn param_buffers(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    fn load_params(&mut self, buffers: &[Vec<f32>]) -> Result<(), NnError> {
        if buffers.is_empty() {
            Ok(())
        } else {
            Err(NnError::SnapshotMismatch {
                detail: format!("dropout has no parameters, snapshot has {}", buffers.len()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let layer = Dropout::new(0.5, 1);
        let x = Matrix::from_rows(&[vec![1.0, -2.0, 3.0]]).unwrap();
        assert_eq!(layer.infer(&x), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut layer = Dropout::new(0.4, 7);
        let x = Matrix::from_flat(1, 10_000, vec![1.0; 10_000]);
        let y = layer.forward_train(&x);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors carry the inverted scale.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 1.0 / 0.6).abs() < 1e-6));
    }

    #[test]
    fn backward_gates_like_forward() {
        let mut layer = Dropout::new(0.5, 3);
        let x = Matrix::from_flat(1, 8, vec![1.0; 8]);
        let y = layer.forward_train(&x);
        let g = Matrix::from_flat(1, 8, vec![1.0; 8]);
        let gi = layer.backward(&g).unwrap();
        for (out, grad) in y.as_slice().iter().zip(gi.as_slice()) {
            assert_eq!(out == &0.0, grad == &0.0);
        }
    }

    #[test]
    fn zero_rate_is_identity_in_training() {
        let mut layer = Dropout::new(0.0, 1);
        let x = Matrix::from_rows(&[vec![2.0, 3.0]]).unwrap();
        assert_eq!(layer.forward_train(&x), x);
    }

    #[test]
    fn masks_are_deterministic_per_seed() {
        let x = Matrix::from_flat(1, 32, vec![1.0; 32]);
        let mut a = Dropout::new(0.5, 9);
        let mut b = Dropout::new(0.5, 9);
        assert_eq!(a.forward_train(&x), b.forward_train(&x));
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_of_one() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn trains_inside_a_network() {
        use crate::{Adam, Dense, InitRng, Relu, Sequential, SoftmaxCrossEntropy};
        let mut rng = InitRng::seeded(2, 1.0);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dropout::new(0.2, 5));
        net.push(Dense::new(16, 2, &mut rng));
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ])
        .unwrap();
        let y = vec![1usize, 0, 1, 0];
        let loss = SoftmaxCrossEntropy::balanced(2);
        let mut opt = Adam::new(0.05);
        let mut last = f64::MAX;
        for _ in 0..200 {
            last = net.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        assert!(last < 0.5, "loss {last}");
        assert_eq!(net.infer(&x).argmax_rows(), y);
    }
}
