use crate::{Layer, NnError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// A serialisable capture of a network's layer kinds and weights.
///
/// Snapshots pair with [`crate::Sequential::snapshot`] /
/// [`crate::Sequential::load_snapshot`]: the architecture itself is rebuilt in
/// code (construction needs RNGs and dimensions), the snapshot carries only
/// the learned state plus enough structure to detect mismatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    layers: Vec<LayerSnapshot>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LayerSnapshot {
    kind: String,
    buffers: Vec<Vec<f32>>,
}

impl NetworkSnapshot {
    pub(crate) fn capture(layers: &[Box<dyn Layer>]) -> Self {
        NetworkSnapshot {
            layers: layers
                .iter()
                .map(|layer| LayerSnapshot {
                    kind: layer.kind().to_owned(),
                    buffers: layer
                        .param_buffers()
                        .into_iter()
                        .map(<[f32]>::to_vec)
                        .collect(),
                })
                .collect(),
        }
    }

    pub(crate) fn restore(&self, layers: &mut [Box<dyn Layer>]) -> Result<(), NnError> {
        if layers.len() != self.layers.len() {
            return Err(NnError::SnapshotMismatch {
                detail: format!(
                    "network has {} layers, snapshot has {}",
                    layers.len(),
                    self.layers.len()
                ),
            });
        }
        for (layer, snap) in layers.iter_mut().zip(&self.layers) {
            if layer.kind() != snap.kind {
                return Err(NnError::SnapshotMismatch {
                    detail: format!("layer kind {} vs snapshot {}", layer.kind(), snap.kind),
                });
            }
            layer.load_params(&snap.buffers)?;
        }
        Ok(())
    }

    /// Number of layers captured.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer kinds and parameter buffers in network order, for external
    /// serialisers (e.g. the binary checkpoint codec).
    pub fn layer_parts(&self) -> impl Iterator<Item = (&str, &[Vec<f32>])> {
        self.layers
            .iter()
            .map(|l| (l.kind.as_str(), l.buffers.as_slice()))
    }

    /// Rebuilds a snapshot from `(kind, buffers)` parts as produced by
    /// [`Self::layer_parts`]. Structural validation still happens at
    /// [`crate::Sequential::load_snapshot`] time.
    pub fn from_layer_parts(parts: Vec<(String, Vec<Vec<f32>>)>) -> Self {
        NetworkSnapshot {
            layers: parts
                .into_iter()
                .map(|(kind, buffers)| LayerSnapshot { kind, buffers })
                .collect(),
        }
    }

    /// Total parameter count across all layers.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.buffers.iter())
            .map(Vec::len)
            .sum()
    }

    /// Writes the snapshot as JSON. A mut reference works as the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), std::io::Error> {
        serde_json::to_writer(writer, self).map_err(std::io::Error::other)
    }

    /// Reads a snapshot from JSON. A mut reference works as the reader.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures.
    pub fn read_json<R: Read>(reader: R) -> Result<Self, std::io::Error> {
        serde_json::from_reader(reader).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, InitRng, Relu, Sequential};

    fn net() -> Sequential {
        let mut rng = InitRng::seeded(2, 0.3);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, &mut rng));
        net
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let snap = net().snapshot();
        // (3*5 + 5) + (5*2 + 2) = 32.
        assert_eq!(snap.parameter_count(), 32);
        assert_eq!(snap.layer_count(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let snap = net().snapshot();
        let mut buf = Vec::new();
        snap.write_json(&mut buf).unwrap();
        let back = NetworkSnapshot::read_json(buf.as_slice()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn layer_parts_round_trip() {
        let snap = net().snapshot();
        let parts: Vec<(String, Vec<Vec<f32>>)> = snap
            .layer_parts()
            .map(|(kind, buffers)| (kind.to_owned(), buffers.to_vec()))
            .collect();
        assert_eq!(NetworkSnapshot::from_layer_parts(parts), snap);
    }

    #[test]
    fn restore_into_same_architecture() {
        let original = net();
        let snap = original.snapshot();
        let mut clone = net();
        clone.load_snapshot(&snap).unwrap();
        let x = crate::Matrix::from_rows(&[vec![0.5, -0.5, 1.0]]).unwrap();
        assert_eq!(original.infer(&x), clone.infer(&x));
    }
}
