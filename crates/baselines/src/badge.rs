use hotspot_active::{record_selection, BatchSelector, SelectionContext};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The BADGE batch selector (Ash et al., ICLR 2020 — reference \[13\] of the
/// paper): deep batch active learning by diverse, *gradient* lower bounds.
///
/// Each query sample is represented by its loss-gradient embedding with
/// respect to the final layer under the model's own prediction,
/// `gᵢ = (σ(zᵢ) − e_ŷᵢ) ⊗ hᵢ`, whose norm grows with uncertainty and whose
/// direction captures the sample's effect on the classifier. The batch is
/// the k-means++ seeding over these embeddings: probability proportional to
/// squared distance from the already-chosen set — simultaneously uncertain
/// *and* diverse, which is why the paper discusses it as the closest prior
/// art outside EDA.
///
/// Provided as an extension baseline; it does not appear in the paper's own
/// tables.
#[derive(Debug, Default, Clone)]
pub struct BadgeSelector;

impl BadgeSelector {
    /// Creates the selector.
    pub fn new() -> Self {
        BadgeSelector
    }

    /// Gradient embeddings of one query set: `(σ(z) − e_ŷ) ⊗ h`, row-major
    /// `n × (classes · emb)`.
    pub fn gradient_embeddings(ctx: &SelectionContext<'_>) -> Vec<f32> {
        let n = ctx.len();
        let classes = ctx.logits.cols();
        let emb_dim = ctx.embeddings.cols();
        let mut out = vec![0.0f32; n * classes * emb_dim];
        for i in 0..n {
            let logits = ctx.logits.row(i);
            // Softmax with the max trick.
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
            let sum: f32 = exp.iter().sum();
            let probs: Vec<f32> = exp.iter().map(|&e| e / sum).collect();
            let predicted = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            let h = ctx.embeddings.row(i);
            let row = &mut out[i * classes * emb_dim..(i + 1) * classes * emb_dim];
            for c in 0..classes {
                let coefficient = probs[c] - (c == predicted) as usize as f32;
                for (slot, &hj) in row[c * emb_dim..(c + 1) * emb_dim].iter_mut().zip(h) {
                    *slot = coefficient * hj;
                }
            }
        }
        out
    }
}

impl BatchSelector for BadgeSelector {
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize> {
        let n = ctx.len();
        if n == 0 || ctx.k == 0 {
            return Vec::new();
        }
        let k = ctx.k.min(n);
        let dim = ctx.logits.cols() * ctx.embeddings.cols();
        let gradients = Self::gradient_embeddings(ctx);
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.rng_seed);

        // k-means++ seeding over gradient embeddings. The first centre is
        // the largest-gradient sample (highest loss bound), as in BADGE.
        let norm2 = |i: usize| -> f64 {
            gradients[i * dim..(i + 1) * dim]
                .iter()
                .map(|&v| (v as f64).powi(2))
                .sum()
        };
        let first = (0..n)
            .max_by(|&a, &b| {
                norm2(a)
                    .partial_cmp(&norm2(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let mut chosen = vec![first];
        let mut dist2: Vec<f64> = (0..n)
            .map(|i| pair_dist2(&gradients, dim, i, first))
            .collect();
        while chosen.len() < k {
            let total: f64 = dist2.iter().sum();
            let next = if total <= 0.0 {
                // All remaining points coincide with a centre: fall back to
                // an arbitrary unchosen index.
                match (0..n).find(|i| !chosen.contains(i)) {
                    Some(i) => i,
                    None => break,
                }
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut pick = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            if !chosen.contains(&next) {
                chosen.push(next);
            }
            for (i, slot) in dist2.iter_mut().enumerate() {
                let d = pair_dist2(&gradients, dim, i, next);
                if d < *slot {
                    *slot = d;
                }
            }
        }
        record_selection(self.name(), n, chosen.len());
        chosen
    }

    fn name(&self) -> &'static str {
        "badge"
    }
}

fn pair_dist2(gradients: &[f32], dim: usize, a: usize, b: usize) -> f64 {
    gradients[a * dim..(a + 1) * dim]
        .iter()
        .zip(&gradients[b * dim..(b + 1) * dim])
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_active::{AblationConfig, WeightMode};
    use hotspot_nn::Matrix;

    fn ctx<'a>(
        logits: &'a Matrix,
        probabilities: &'a [f32],
        embeddings: &'a Matrix,
        k: usize,
    ) -> SelectionContext<'a> {
        SelectionContext {
            logits,
            probabilities,
            embeddings,
            k,
            boundary_h: 0.4,
            weight_mode: WeightMode::Entropy,
            ablation: AblationConfig::default(),
            rng_seed: 3,
        }
    }

    /// Two identical uncertain samples, one distinct uncertain sample, one
    /// confident sample.
    fn fixture() -> (Matrix, Vec<f32>, Matrix) {
        let logits = Matrix::from_rows(&[
            vec![0.1, -0.1],
            vec![0.1, -0.1],
            vec![-0.1, 0.1],
            vec![6.0, -6.0],
        ])
        .unwrap();
        let probabilities = vec![0.55, 0.45, 0.55, 0.45, 0.45, 0.55, 1.0, 0.0];
        let embeddings = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ])
        .unwrap();
        (logits, probabilities, embeddings)
    }

    #[test]
    fn gradient_norm_tracks_uncertainty() {
        let (logits, probs, emb) = fixture();
        let c = ctx(&logits, &probs, &emb, 2);
        let g = BadgeSelector::gradient_embeddings(&c);
        let dim = 4;
        let norm = |i: usize| -> f32 { g[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum() };
        // The uncertain samples carry much larger gradients than the
        // confident one.
        assert!(norm(0) > 10.0 * norm(3), "{} vs {}", norm(0), norm(3));
    }

    #[test]
    fn first_pick_is_largest_gradient() {
        let (logits, probs, emb) = fixture();
        let c = ctx(&logits, &probs, &emb, 1);
        let picked = BadgeSelector::new().select(&c);
        assert_eq!(picked.len(), 1);
        assert_ne!(picked[0], 3, "confident sample must not lead the batch");
    }

    #[test]
    fn avoids_duplicate_gradients() {
        let (logits, probs, emb) = fixture();
        let c = ctx(&logits, &probs, &emb, 2);
        let picked = BadgeSelector::new().select(&c);
        assert_eq!(picked.len(), 2);
        assert!(
            !(picked.contains(&0) && picked.contains(&1)),
            "identical samples selected together: {picked:?}"
        );
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let (logits, probs, emb) = fixture();
        let c = ctx(&logits, &probs, &emb, 3);
        let a = BadgeSelector::new().select(&c);
        let b = BadgeSelector::new().select(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_pool_selects_all_distinct() {
        let (logits, probs, emb) = fixture();
        let c = ctx(&logits, &probs, &emb, 10);
        let mut picked = BadgeSelector::new().select(&c);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn empty_query_selects_nothing() {
        let logits = Matrix::zeros(0, 2);
        let emb = Matrix::zeros(0, 2);
        let c = ctx(&logits, &[], &emb, 5);
        assert!(BadgeSelector::new().select(&c).is_empty());
    }
}
