use hotspot_layout::{GeneratedBenchmark, Signature};
use hotspot_litho::{Label, LithoOracle};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Matching mode of the pattern-matching baseline \[2\].
///
/// Fuzzy matching is realised as pooled-and-quantised density keys (an O(n)
/// clustering) rather than pairwise similarity thresholds, which would be
/// quadratic on the 163 k-clip ICCAD12 population; the pooling edge and
/// quantisation level play the role of the paper's similarity thresholds
/// (smaller pools / fewer levels ⇔ lower thresholds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum MatchMode {
    /// Identical quantised rasters.
    Exact,
    /// Pooled-quantised core-density key.
    Fuzzy {
        /// Pooled grid edge (≤ the 12-cell signature grid).
        pool_edge: usize,
        /// Quantisation levels per pooled cell.
        levels: u16,
    },
}

/// The pattern-matching hotspot detector (Table II baselines).
///
/// See the [crate-level documentation](crate) for semantics and an example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternMatcher {
    mode: MatchMode,
    name: &'static str,
}

/// Result of a pattern-matching run over one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternMatchOutcome {
    /// Method name (`"PM-exact"`, `"PM-a95"`, …).
    pub name: String,
    /// Detection accuracy: true hotspots whose cluster representative is a
    /// hotspot, over all hotspots.
    pub accuracy: f64,
    /// Lithography overhead: one simulation per cluster representative.
    pub litho: usize,
    /// Number of clusters formed.
    pub clusters: usize,
    /// Benchmark indices of the simulated representatives (the litho-sampled
    /// positions of Fig. 5).
    pub sampled_indices: Vec<usize>,
    /// Benchmark indices predicted hotspot.
    pub predicted_hotspots: Vec<usize>,
}

impl fmt::Display for PatternMatchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: acc {:.2}% litho {} ({} clusters)",
            self.name,
            self.accuracy * 100.0,
            self.litho,
            self.clusters
        )
    }
}

impl PatternMatcher {
    /// Exact pattern matching (`PM-exact`).
    pub fn exact() -> Self {
        PatternMatcher {
            mode: MatchMode::Exact,
            name: "PM-exact",
        }
    }

    /// Fuzzy matching at the paper's 0.95-similarity operating point
    /// (`PM-a95`): moderate pooling, near-exact accuracy at reduced cost.
    pub fn fuzzy_95() -> Self {
        PatternMatcher {
            mode: MatchMode::Fuzzy {
                pool_edge: 6,
                levels: 4,
            },
            name: "PM-a95",
        }
    }

    /// Fuzzy matching at the paper's 0.90-similarity operating point
    /// (`PM-a90`): aggressive pooling, cheap but lossy.
    pub fn fuzzy_90() -> Self {
        PatternMatcher {
            mode: MatchMode::Fuzzy {
                pool_edge: 4,
                levels: 4,
            },
            name: "PM-a90",
        }
    }

    /// Edge-tolerant matching (`PM-e2`): patterns whose edges moved within a
    /// small tolerance share a cluster key.
    pub fn edge_tolerant() -> Self {
        PatternMatcher {
            mode: MatchMode::Fuzzy {
                pool_edge: 12,
                levels: 16,
            },
            name: "PM-e2",
        }
    }

    /// A custom fuzziness, for sweeps.
    ///
    /// # Panics
    ///
    /// Panics when `pool_edge` is outside `1..=12` or `levels` outside
    /// `1..=256`.
    pub fn fuzzy(pool_edge: usize, levels: u16) -> Self {
        assert!((1..=12).contains(&pool_edge), "pool edge must be in 1..=12");
        assert!((1..=256).contains(&levels), "levels must be in 1..=256");
        PatternMatcher {
            mode: MatchMode::Fuzzy { pool_edge, levels },
            name: "PM-fuzzy",
        }
    }

    /// Method name as printed in Table II.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs the detector over a benchmark: cluster, simulate one
    /// representative per cluster, propagate its label.
    pub fn run(&self, bench: &GeneratedBenchmark) -> PatternMatchOutcome {
        let _span = hotspot_telemetry::span(hotspot_telemetry::names::SPAN_PM_RUN)
            .with("method", self.name);
        let mut oracle = bench.oracle();
        let signatures = bench.signatures();
        let cluster_of = self.cluster(signatures);
        let n_clusters = cluster_of.iter().copied().max().map_or(0, |m| m + 1);

        // Simulate the first member (representative) of each cluster.
        let mut rep_of = vec![usize::MAX; n_clusters];
        for (clip, &cluster) in cluster_of.iter().enumerate() {
            if rep_of[cluster] == usize::MAX {
                rep_of[cluster] = clip;
            }
        }
        let rep_labels: Vec<Label> = rep_of.iter().map(|&rep| oracle.query(rep)).collect();

        let mut correct_hotspots = 0usize;
        let mut predicted_hotspots = Vec::new();
        for (clip, &cluster) in cluster_of.iter().enumerate() {
            if rep_labels[cluster] == Label::Hotspot {
                predicted_hotspots.push(clip);
                if bench.labels()[clip] == Label::Hotspot {
                    correct_hotspots += 1;
                }
            }
        }
        let total = bench.hotspot_count();
        let accuracy = if total == 0 {
            1.0
        } else {
            correct_hotspots as f64 / total as f64
        };
        hotspot_telemetry::info(
            "baselines.pattern",
            "pattern matching complete",
            &[
                ("method", self.name.into()),
                ("clusters", (n_clusters as u64).into()),
                ("litho", (oracle.unique_queries() as u64).into()),
                ("accuracy", accuracy.into()),
            ],
        );
        PatternMatchOutcome {
            name: self.name.to_owned(),
            accuracy,
            litho: oracle.unique_queries(),
            clusters: n_clusters,
            sampled_indices: rep_of,
            predicted_hotspots,
        }
    }

    /// Assigns every clip a cluster id.
    fn cluster(&self, signatures: &[Signature]) -> Vec<usize> {
        match self.mode {
            MatchMode::Exact => key_cluster(signatures.iter().map(|s| s.exact_hash)),
            MatchMode::Fuzzy { pool_edge, levels } => {
                key_cluster(signatures.iter().map(|s| s.pooled_hash(pool_edge, levels)))
            }
        }
    }
}

/// Clusters by exact key equality.
fn key_cluster<I: Iterator<Item = u64>>(keys: I) -> Vec<usize> {
    let mut ids: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for key in keys {
        let next = ids.len();
        out.push(*ids.entry(key).or_insert(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout::{BenchmarkSpec, Tech};

    fn bench() -> GeneratedBenchmark {
        let spec = BenchmarkSpec {
            name: "pm-test".to_owned(),
            tech: Tech::Euv7,
            hotspots: 20,
            non_hotspots: 180,
            dup_rate: 0.3,
            near_miss_rate: 0.3,
        };
        GeneratedBenchmark::generate(&spec, 21).unwrap()
    }

    #[test]
    fn exact_matching_is_perfectly_accurate() {
        let outcome = PatternMatcher::exact().run(&bench());
        assert_eq!(outcome.accuracy, 1.0);
    }

    #[test]
    fn exact_matching_pays_less_than_one_sim_per_clip() {
        let b = bench();
        let outcome = PatternMatcher::exact().run(&b);
        // Duplicates share clusters, so litho < total clips.
        assert!(outcome.litho < b.len());
        assert!(outcome.litho > b.len() / 2);
        assert_eq!(outcome.litho, outcome.clusters);
    }

    #[test]
    fn fuzzy_matching_is_cheaper_but_lossier() {
        let b = bench();
        let exact = PatternMatcher::exact().run(&b);
        let a95 = PatternMatcher::fuzzy_95().run(&b);
        let a90 = PatternMatcher::fuzzy_90().run(&b);
        assert!(a95.litho <= exact.litho);
        assert!(a90.litho <= a95.litho);
        assert!(a90.accuracy <= a95.accuracy + 1e-9);
        assert!(
            a90.accuracy < 1.0,
            "a90 should miss something: {}",
            a90.accuracy
        );
    }

    #[test]
    fn edge_tolerant_sits_between_exact_and_fuzzy() {
        let b = bench();
        let exact = PatternMatcher::exact().run(&b);
        let e2 = PatternMatcher::edge_tolerant().run(&b);
        assert!(e2.litho <= exact.litho);
        assert!(e2.accuracy > 0.5);
    }

    #[test]
    fn outcome_indices_are_consistent() {
        let b = bench();
        let outcome = PatternMatcher::exact().run(&b);
        assert_eq!(outcome.sampled_indices.len(), outcome.clusters);
        for &rep in &outcome.sampled_indices {
            assert!(rep < b.len());
        }
        // Every predicted hotspot is a real clip index.
        for &p in &outcome.predicted_hotspots {
            assert!(p < b.len());
        }
    }

    #[test]
    fn display_mentions_name_and_litho() {
        let outcome = PatternMatcher::fuzzy_95().run(&bench());
        let s = outcome.to_string();
        assert!(s.contains("PM-a95") && s.contains("litho"));
    }

    #[test]
    #[should_panic(expected = "pool edge")]
    fn rejects_bad_pool_edge() {
        let _ = PatternMatcher::fuzzy(0, 4);
    }

    #[test]
    fn fuzzier_keys_merge_more() {
        let b = bench();
        let tight = PatternMatcher::fuzzy(12, 32).run(&b);
        let loose = PatternMatcher::fuzzy(3, 4).run(&b);
        assert!(loose.clusters < tight.clusters);
    }

    #[test]
    fn key_cluster_assigns_stable_ids() {
        let ids = key_cluster([5u64, 7, 5, 9, 7].into_iter());
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
    }
}
