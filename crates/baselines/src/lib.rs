//! Baseline methods the DAC 2021 paper compares against.
//!
//! Three families:
//!
//! * **Pattern matching** ([`PatternMatcher`]) — the clustering approach of
//!   Chen et al. \[2\]: clips are grouped by pattern signature, one
//!   lithography simulation is paid per cluster, and every member inherits
//!   its cluster representative's label. Exact matching is near-perfect but
//!   pays for almost every distinct pattern; fuzzy matching (similarity
//!   0.95 / 0.90, or an edge-tolerance key) pays less and misses more —
//!   the Table II columns `PM-exact`, `PM-a95`, `PM-a90`, `PM-e2`.
//! * **TS** — calibrated-uncertainty-only batch sampling;
//!   re-exported from `hotspot-active` ([`UncertaintySelector`]).
//! * **BADGE** ([`BadgeSelector`]) — the gradient-embedding k-means++
//!   sampler of Ash et al. \[13\], the general-purpose method the paper cites
//!   as the closest prior art; provided as an extension baseline.
//! * **QP** ([`QpSelector`]) — the batch selector of Yang et al. \[14\]:
//!   uncertainty is raw (uncalibrated) BvSB, diversity enters through a
//!   relaxed quadratic program over the capped simplex, solved by projected
//!   gradient and rounded to the top-`k`. This is the method the paper's
//!   Fig. 3(b) and Fig. 6(b) runtime comparisons are measured against.
//!
//! # Example
//!
//! ```no_run
//! use hotspot_baselines::PatternMatcher;
//! use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iccad16_2(), 1)?;
//! let outcome = PatternMatcher::exact().run(&bench);
//! assert!(outcome.accuracy > 0.99); // exact matching misses nothing
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod badge;
mod pattern;
mod qp_selector;

pub use badge::BadgeSelector;
pub use hotspot_active::{RandomSelector, UncertaintySelector};
pub use pattern::{PatternMatchOutcome, PatternMatcher};
pub use qp_selector::QpSelector;
