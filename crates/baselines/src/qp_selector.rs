use hotspot_active::{bvsb_scores, record_selection, BatchSelector, SelectionContext};
use hotspot_nn::Matrix;
use hotspot_qp::{QpError, QpProblem, QpSolver};

/// The QP batch selector of Yang et al. (TCAD 2020, reference \[14\]).
///
/// Selection is the relaxed quadratic program
///
/// ```text
///   max  uᵀs − λ·sᵀKs    s.t.  0 ≤ s ≤ 1, Σs = k
/// ```
///
/// where `u` is the *raw* (uncalibrated) BvSB uncertainty — the paper's
/// critique is precisely that \[14\] runs on a poorly calibrated model — and
/// `K` is the embedding similarity matrix, so similar pairs are penalised.
/// The relaxation is solved by projected gradient and rounded to the top-`k`
/// entries, reproducing both the behaviour and the O(n²) + iterative-solve
/// cost that Fig. 3(b) and Fig. 6(b) measure against.
#[derive(Debug, Clone)]
pub struct QpSelector {
    lambda: f64,
    solver: QpSolver,
}

impl QpSelector {
    /// Creates the selector with the default diversity trade-off `λ = 1`.
    pub fn new() -> Self {
        QpSelector {
            lambda: 1.0,
            solver: QpSolver::default(),
        }
    }

    /// Overrides the diversity trade-off.
    ///
    /// # Panics
    ///
    /// Panics when `lambda` is negative or not finite.
    pub fn with_lambda(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be non-negative"
        );
        QpSelector {
            lambda,
            solver: QpSolver::default(),
        }
    }

    /// Builds the QP for a query set; exposed for the diversity-runtime
    /// micro-benchmarks (Fig. 3b).
    ///
    /// # Errors
    ///
    /// Returns [`QpError::BadShape`] when `uncertainty` is not one score per
    /// embedding row.
    pub fn build_problem(
        &self,
        embeddings: &Matrix,
        uncertainty: &[f32],
        k: usize,
    ) -> Result<QpProblem, QpError> {
        let n = embeddings.rows();
        if uncertainty.len() != n {
            return Err(QpError::BadShape {
                q_len: n * n,
                c_len: uncertainty.len(),
            });
        }
        // Similarity matrix on ℓ2-normalised embeddings.
        let normalized = l2_normalize_rows(embeddings);
        let mut q = vec![0.0f64; n * n];
        for i in 0..n {
            let a = normalized.row(i);
            for j in (i + 1)..n {
                let b = normalized.row(j);
                let sim: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                // min ½ sᵀQs with Q = 2λK makes the objective λ sᵀKs.
                let v = 2.0 * self.lambda * sim as f64;
                q[i * n + j] = v;
                q[j * n + i] = v;
            }
        }
        let c: Vec<f64> = uncertainty.iter().map(|&u| -(u as f64)).collect();
        QpProblem::new(q, c, k.min(n) as f64)
    }
}

impl Default for QpSelector {
    fn default() -> Self {
        QpSelector::new()
    }
}

impl BatchSelector for QpSelector {
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize> {
        if ctx.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        // Raw softmax BvSB — deliberately uncalibrated, as in [14].
        let raw = raw_softmax(ctx.logits);
        let uncertainty = bvsb_scores(&raw);
        // One BvSB score per pool row by construction, so the build cannot
        // fail; an empty pick is the safe degradation if it ever does.
        let Ok(problem) = self.build_problem(ctx.embeddings, &uncertainty, ctx.k) else {
            return Vec::new();
        };
        let solution = self.solver.solve(&problem);
        let picked = solution.top_k_indices(ctx.k.min(ctx.len()));
        record_selection(self.name(), ctx.len(), picked.len());
        picked
    }

    fn name(&self) -> &'static str {
        "qp"
    }
}

fn raw_softmax(logits: &Matrix) -> Vec<f32> {
    let mut out = Vec::with_capacity(logits.rows() * logits.cols());
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&z| (z - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        out.extend(exp.into_iter().map(|e| e / sum));
    }
    out
}

fn l2_normalize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let norm: f32 = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_active::{AblationConfig, WeightMode};

    fn fixture() -> (Matrix, Vec<f32>, Matrix) {
        // Items 0 and 1 are identical embeddings with high uncertainty;
        // item 2 differs with high uncertainty; item 3 differs, low
        // uncertainty.
        let logits = Matrix::from_rows(&[
            vec![0.1, -0.1],
            vec![0.1, -0.1],
            vec![-0.05, 0.05],
            vec![4.0, -4.0],
        ])
        .unwrap();
        let probs = vec![0.55, 0.45, 0.55, 0.45, 0.49, 0.51, 0.98, 0.02];
        let embeddings = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.6, 0.8],
        ])
        .unwrap();
        (logits, probs, embeddings)
    }

    fn ctx<'a>(
        logits: &'a Matrix,
        probs: &'a [f32],
        embeddings: &'a Matrix,
        k: usize,
    ) -> SelectionContext<'a> {
        SelectionContext {
            logits,
            probabilities: probs,
            embeddings,
            k,
            boundary_h: 0.4,
            weight_mode: WeightMode::Entropy,
            ablation: AblationConfig::default(),
            rng_seed: 0,
        }
    }

    #[test]
    fn avoids_duplicate_pairs() {
        let (logits, probs, emb) = fixture();
        let context = ctx(&logits, &probs, &emb, 2);
        let picked = QpSelector::new().select(&context);
        assert_eq!(picked.len(), 2);
        assert!(
            !(picked.contains(&0) && picked.contains(&1)),
            "picked both duplicates: {picked:?}"
        );
        assert!(picked.contains(&2), "{picked:?}");
    }

    #[test]
    fn zero_lambda_reduces_to_uncertainty_ranking() {
        let (logits, probs, emb) = fixture();
        let context = ctx(&logits, &probs, &emb, 3);
        let picked = QpSelector::with_lambda(0.0).select(&context);
        // The confident item 3 must be excluded.
        assert!(!picked.contains(&3), "{picked:?}");
    }

    #[test]
    fn respects_batch_size() {
        let (logits, probs, emb) = fixture();
        let context = ctx(&logits, &probs, &emb, 1);
        assert_eq!(QpSelector::new().select(&context).len(), 1);
        let context = ctx(&logits, &probs, &emb, 10);
        assert_eq!(QpSelector::new().select(&context).len(), 4);
    }

    #[test]
    fn empty_query_selects_nothing() {
        let logits = Matrix::zeros(0, 2);
        let emb = Matrix::zeros(0, 2);
        let context = ctx(&logits, &[], &emb, 3);
        assert!(QpSelector::new().select(&context).is_empty());
    }

    #[test]
    fn build_problem_is_symmetric() {
        let (_, _, emb) = fixture();
        let problem = QpSelector::new().build_problem(&emb, &[0.5; 4], 2).unwrap();
        let q = problem.quadratic();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(q[i * 4 + j], q[j * 4 + i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_lambda() {
        let _ = QpSelector::with_lambda(-1.0);
    }
}
