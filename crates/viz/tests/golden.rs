//! Golden-file tests: the SVG output for fixed inputs is pinned
//! byte-for-byte, so any rendering change is a deliberate diff here.

use hotspot_viz::{fmt_num, LineChart, RelBin, ReliabilityChart, Series, Svg, TextAnchor};

/// A minimal document whose exact bytes are pinned. If this test fails, the
/// renderer's output format changed: update the golden string only when the
/// change is intentional.
#[test]
fn minimal_document_matches_golden_bytes() {
    let mut svg = Svg::new(40.0, 20.0);
    svg.rect(2.0, 3.0, 10.0, 5.5, "#2563eb");
    svg.line(0.0, 0.0, 40.0, 20.0, "#334155", 1.0);
    svg.text(20.0, 10.0, 8.0, TextAnchor::Middle, "#0f172a", "a&b");
    let out = svg.finish();
    let golden = concat!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"40\" height=\"20\" viewBox=\"0 0 40 20\">",
        "<rect x=\"0\" y=\"0\" width=\"40\" height=\"20\" fill=\"#ffffff\"/>",
        "<rect x=\"2\" y=\"3\" width=\"10\" height=\"5.5\" fill=\"#2563eb\"/>",
        "<line x1=\"0\" y1=\"0\" x2=\"40\" y2=\"20\" stroke=\"#334155\" stroke-width=\"1\"/>",
        "<text x=\"20\" y=\"10\" font-family=\"Helvetica,Arial,sans-serif\" font-size=\"8\" ",
        "text-anchor=\"middle\" fill=\"#0f172a\">a&amp;b</text>",
        "</svg>",
    );
    assert_eq!(out, golden);
}

/// Chart-level determinism: independently constructed identical charts must
/// render byte-identical documents, including irrational coordinates that
/// exercise the fixed-precision formatter.
#[test]
fn repeated_chart_renders_are_byte_identical() {
    let make = || {
        let points: Vec<(f64, f64)> = (0..17)
            .map(|i| {
                let x = f64::from(i) / 3.0;
                (x, (x * 1.7).sin() * 0.81 + 1.0 / (x + 0.37))
            })
            .collect();
        LineChart::new(
            "trajectory",
            "iteration",
            "value",
            vec![
                Series::new("a", points.clone()),
                Series::new("b", points.iter().map(|&(x, y)| (x, y * 0.5)).collect()),
            ],
        )
        .to_svg()
    };
    let first = make();
    assert_eq!(first, make());
    assert!(!first.contains("NaN"));
}

#[test]
fn reliability_chart_renders_are_byte_identical() {
    let make = || {
        let bins: Vec<RelBin> = (0u32..10)
            .map(|i| {
                let lower = f64::from(i) / 10.0;
                RelBin {
                    lower,
                    upper: lower + 0.1,
                    count: u64::from(i) * 3 + 1,
                    confidence: lower + 0.05,
                    accuracy: (lower + 0.02).min(1.0),
                }
            })
            .collect();
        ReliabilityChart::new("after", bins, 0.031_4).to_svg()
    };
    assert_eq!(make(), make());
}

/// The number formatter is the determinism pillar — pin a spread of values.
#[test]
fn number_format_is_pinned() {
    let cases = [
        (0.0, "0"),
        (-0.0, "0"),
        (1.0, "1"),
        (0.125, "0.12"), // round-half-to-even, like Rust's {:.2}
        (123.456, "123.46"),
        (-7.5, "-7.5"),
        (1e-9, "0"),
        (f64::NAN, "0"),
        (f64::NEG_INFINITY, "0"),
    ];
    for (input, expected) in cases {
        assert_eq!(fmt_num(input), expected, "fmt_num({input})");
    }
}
