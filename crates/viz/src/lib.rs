//! Deterministic, zero-dependency SVG rendering for journal dashboards.
//!
//! `lithohd-report render` turns a JSONL run journal into a static SVG
//! dashboard; this crate is the drawing layer it (and any other tool)
//! builds on:
//!
//! - [`Svg`] — a low-level SVG document builder (rects, lines, polylines,
//!   paths, circles, text, groups) with XML escaping.
//! - [`LinearScale`] — data-to-pixel mapping with "nice" tick generation.
//! - [`LineChart`] / [`BarChart`] — axis-and-legend chart primitives.
//! - [`Heatmap`] — binned 2-D density as a colour-ramped cell grid.
//! - [`FlameChart`] — icicle-layout flame graph over nested span frames.
//! - [`ReliabilityChart`] — the calibration reliability diagram of Fig. 2
//!   (per-bin confidence vs. accuracy with the identity diagonal).
//!
//! # Determinism contract
//!
//! Rendering the same inputs must produce **byte-identical** SVG, so CI can
//! golden-test dashboards and artifact diffs stay meaningful. The crate
//! therefore:
//!
//! - formats every coordinate through one fixed-precision formatter
//!   ([`fmt_num`]) — no locale, no shortest-round-trip jitter;
//! - never reads clocks, RNGs, or environment;
//! - iterates only ordered containers (slices, `Vec`).
//!
//! Non-finite inputs never panic and never leak `NaN`/`inf` into the
//! output: coordinates are dropped or clamped, so a journal with a
//! pathological series still renders.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod chart;
mod flame;
mod heatmap;
mod latency;
mod reliability;
mod scale;
mod svg;

pub use chart::{BarChart, LineChart, Series};
pub use flame::{FlameChart, FlameFrame};
pub use heatmap::Heatmap;
pub use latency::{
    latency_quantile_panel, latency_report_panel, latency_timeline_panel, LatencySummary,
};
pub use reliability::{RelBin, ReliabilityChart};
pub use scale::LinearScale;
pub use svg::{escape_text, fmt_num, Svg, TextAnchor};

/// The categorical colour palette, in assignment order (series `i` uses
/// `PALETTE[i % PALETTE.len()]`). Chosen for contrast on a white canvas.
pub const PALETTE: &[&str] = &[
    "#2563eb", // blue
    "#dc2626", // red
    "#16a34a", // green
    "#9333ea", // purple
    "#ea580c", // orange
    "#0891b2", // cyan
    "#ca8a04", // mustard
    "#db2777", // pink
];

/// Sequential colour ramp from cool to warm, for ordered encodings such as
/// iteration number. `t` is clamped to `[0, 1]`; non-finite maps to `0`.
pub fn ramp_color(t: f64) -> String {
    let t = if t.is_finite() {
        t.clamp(0.0, 1.0)
    } else {
        0.0
    };
    // Linear blend #dbeafe -> #1e3a8a (light to dark blue).
    let lerp = |a: f64, b: f64| (a + (b - a) * t).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(219.0, 30.0),
        lerp(234.0, 58.0),
        lerp(254.0, 138.0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_entries_are_hex_colors() {
        for color in PALETTE {
            assert!(color.starts_with('#') && color.len() == 7, "{color}");
        }
    }

    #[test]
    fn ramp_is_clamped_and_finite_safe() {
        assert_eq!(ramp_color(0.0), "#dbeafe");
        assert_eq!(ramp_color(1.0), "#1e3a8a");
        assert_eq!(ramp_color(-5.0), ramp_color(0.0));
        assert_eq!(ramp_color(7.0), ramp_color(1.0));
        assert_eq!(ramp_color(f64::NAN), ramp_color(0.0));
    }
}
