//! The low-level SVG document builder: typed element emitters over a string
//! buffer, with XML escaping and the crate's deterministic number format.

use std::fmt::Write as _;

/// Formats a coordinate or data value for SVG output: fixed two-decimal
/// precision with trailing zeros (and a bare trailing dot) trimmed, `-0`
/// normalised to `0`, and non-finite values rendered as `0` so `NaN` can
/// never reach the document. Purely a function of the bits of `v` — the
/// pillar of the crate's byte-identical-output contract.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let text = format!("{v:.2}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    if trimmed == "-0" {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Escapes text for use in XML content and attribute values.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Horizontal anchoring of a [`Svg::text`] element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextAnchor {
    /// Text grows rightward from `x`.
    Start,
    /// Text is centred on `x`.
    Middle,
    /// Text grows leftward from `x`.
    End,
}

impl TextAnchor {
    fn as_str(self) -> &'static str {
        match self {
            TextAnchor::Start => "start",
            TextAnchor::Middle => "middle",
            TextAnchor::End => "end",
        }
    }
}

/// An SVG document under construction. Elements append in call order;
/// [`Svg::finish`] closes the root and returns the full text.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
    open_groups: usize,
}

impl Svg {
    /// Opens a document with a pixel viewport of `width × height` on a
    /// white canvas.
    pub fn new(width: f64, height: f64) -> Svg {
        let mut svg = Svg {
            width,
            height,
            body: String::new(),
            open_groups: 0,
        };
        svg.rect(0.0, 0.0, width, height, "#ffffff");
        svg
    }

    /// The viewport width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The viewport height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = write!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            escape_text(fill)
        );
    }

    /// A filled rectangle with an explicit fill opacity.
    pub fn rect_alpha(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, opacity: f64) {
        let _ = write!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\" fill-opacity=\"{}\"/>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            escape_text(fill),
            fmt_num(opacity)
        );
    }

    /// A stroked, unfilled rectangle. `dash` draws a dashed outline with
    /// the given on/off pattern length.
    #[allow(clippy::too_many_arguments)] // geometry + stroke styling is irreducibly positional
    pub fn rect_outline(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        stroke: &str,
        stroke_width: f64,
        dash: Option<f64>,
    ) {
        let dash_attr = dash.map_or(String::new(), |d| {
            format!(" stroke-dasharray=\"{}\"", fmt_num(d))
        });
        let _ = write!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"{}/>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            escape_text(stroke),
            fmt_num(stroke_width),
            dash_attr
        );
    }

    /// A straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, stroke_width: f64) {
        let _ = write!(
            self.body,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"/>",
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            escape_text(stroke),
            fmt_num(stroke_width)
        );
    }

    /// A dashed straight line segment.
    #[allow(clippy::too_many_arguments)] // geometry + stroke styling is irreducibly positional
    pub fn dashed_line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        stroke_width: f64,
        dash: f64,
    ) {
        let _ = write!(
            self.body,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\" stroke-dasharray=\"{}\"/>",
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            escape_text(stroke),
            fmt_num(stroke_width),
            fmt_num(dash)
        );
    }

    /// An open polyline through `points`; non-finite points are skipped so
    /// a series with gaps still draws its finite part.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, stroke_width: f64) {
        let usable: Vec<&(f64, f64)> = points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if usable.len() < 2 {
            return;
        }
        let mut coords = String::new();
        for (i, (x, y)) in usable.iter().enumerate() {
            if i > 0 {
                coords.push(' ');
            }
            let _ = write!(coords, "{},{}", fmt_num(*x), fmt_num(*y));
        }
        let _ = write!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"/>",
            coords,
            escape_text(stroke),
            fmt_num(stroke_width)
        );
    }

    /// A raw path from a prebuilt `d` attribute (caller formats numbers via
    /// [`fmt_num`] to stay inside the determinism contract).
    pub fn path(&mut self, d: &str, fill: &str, stroke: &str, stroke_width: f64) {
        let _ = write!(
            self.body,
            "<path d=\"{}\" fill=\"{}\" stroke=\"{}\" stroke-width=\"{}\"/>",
            escape_text(d),
            escape_text(fill),
            escape_text(stroke),
            fmt_num(stroke_width)
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\"/>",
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            escape_text(fill)
        );
    }

    /// A stroked, unfilled circle.
    pub fn circle_outline(&mut self, cx: f64, cy: f64, r: f64, stroke: &str, stroke_width: f64) {
        let _ = write!(
            self.body,
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"/>",
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            escape_text(stroke),
            fmt_num(stroke_width)
        );
    }

    /// A text element anchored at `(x, y)` (baseline), in the document's
    /// fixed sans-serif stack.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: TextAnchor, fill: &str, text: &str) {
        let _ = write!(
            self.body,
            "<text x=\"{}\" y=\"{}\" font-family=\"Helvetica,Arial,sans-serif\" font-size=\"{}\" text-anchor=\"{}\" fill=\"{}\">{}</text>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(size),
            anchor.as_str(),
            escape_text(fill),
            escape_text(text)
        );
    }

    /// Opens a `<g>` translated by `(dx, dy)`; close with [`Svg::group_end`].
    pub fn group(&mut self, dx: f64, dy: f64) {
        let _ = write!(
            self.body,
            "<g transform=\"translate({},{})\">",
            fmt_num(dx),
            fmt_num(dy)
        );
        self.open_groups += 1;
    }

    /// Closes the innermost open group; a no-op when none is open.
    pub fn group_end(&mut self) {
        if self.open_groups > 0 {
            self.body.push_str("</g>");
            self.open_groups -= 1;
        }
    }

    /// Closes any open groups and the root element, returning the document.
    pub fn finish(mut self) -> String {
        while self.open_groups > 0 {
            self.group_end();
        }
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">{}</svg>",
            fmt_num(self.width),
            fmt_num(self.height),
            fmt_num(self.width),
            fmt_num(self.height),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_is_trimmed_and_finite() {
        assert_eq!(fmt_num(1.0), "1");
        assert_eq!(fmt_num(1.5), "1.5");
        assert_eq!(fmt_num(1.25), "1.25");
        assert_eq!(fmt_num(1.256), "1.26");
        assert_eq!(fmt_num(-0.0), "0");
        assert_eq!(fmt_num(-0.004), "0");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(f64::INFINITY), "0");
        assert_eq!(fmt_num(-3.10), "-3.1");
    }

    #[test]
    fn escaping_covers_xml_metacharacters() {
        assert_eq!(escape_text(r#"a<b>&"c'"#), "a&lt;b&gt;&amp;&quot;c&apos;");
    }

    #[test]
    fn document_structure_is_wellformed() {
        let mut svg = Svg::new(100.0, 50.0);
        svg.group(10.0, 5.0);
        svg.rect(0.0, 0.0, 10.0, 10.0, "#ff0000");
        svg.text(5.0, 5.0, 10.0, TextAnchor::Middle, "#000000", "a<b");
        let out = svg.finish(); // group auto-closed
        assert!(out.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(out.ends_with("</svg>"));
        assert!(out.contains("a&lt;b"));
        assert_eq!(out.matches("<g ").count(), out.matches("</g>").count());
    }

    #[test]
    fn polyline_skips_nonfinite_points() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.polyline(&[(0.0, 0.0), (f64::NAN, 1.0), (5.0, 5.0)], "#000000", 1.0);
        let out = svg.finish();
        assert!(out.contains("points=\"0,0 5,5\""));
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn polyline_with_one_finite_point_is_dropped() {
        let mut svg = Svg::new(10.0, 10.0);
        svg.polyline(&[(1.0, 1.0), (f64::INFINITY, 2.0)], "#000000", 1.0);
        assert!(!svg.finish().contains("polyline"));
    }

    #[test]
    fn identical_calls_render_identical_bytes() {
        let build = || {
            let mut svg = Svg::new(64.0, 64.0);
            svg.circle(1.0 / 3.0, 2.0 / 3.0, 4.0, "#123456");
            svg.finish()
        };
        assert_eq!(build(), build());
    }
}
