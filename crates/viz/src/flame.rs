//! Flame (icicle) chart: hierarchical time attribution as nested bars.
//!
//! Root frames span the top row; each child occupies a share of its parent's
//! width proportional to its value, one row further down. The gap between a
//! parent's width and its children's sum is the parent's self time. Like the
//! rest of the crate, rendering is a pure function of the input frames —
//! colours come from a stable label hash, not insertion order, so the same
//! span tree colours identically across runs and journals.

use crate::{fmt_num, Svg, TextAnchor, PALETTE};

const MARGIN: f64 = 12.0;
const TITLE_SPACE: f64 = 26.0;
const ROW_HEIGHT: f64 = 22.0;
const ROW_GAP: f64 = 2.0;
const TEXT_COLOR: &str = "#0f172a";
const MUTED_COLOR: &str = "#334155";
/// Frames narrower than this many pixels draw without a label.
const MIN_LABEL_WIDTH: f64 = 34.0;
/// Approximate glyph advance at font-size 10, for label truncation.
const GLYPH_WIDTH: f64 = 6.0;

/// One frame of the flame graph: a label, an inclusive value (its own time
/// plus its children's), and the child frames nested under it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameFrame {
    /// Frame label (span name).
    pub label: String,
    /// Inclusive weight (e.g. microseconds). Non-finite or negative values
    /// render as zero-width frames.
    pub value: f64,
    /// Nested frames, drawn left-to-right in the given order.
    pub children: Vec<FlameFrame>,
}

impl FlameFrame {
    /// A leaf frame.
    pub fn leaf(label: impl Into<String>, value: f64) -> FlameFrame {
        FlameFrame {
            label: label.into(),
            value,
            children: Vec::new(),
        }
    }

    /// Builds a forest from `/`-separated paths with their total weights
    /// (the shape of a journal's span aggregation, e.g.
    /// `("run/iteration/nn.train", 1500.0)`).
    ///
    /// Sibling order follows first appearance in `paths`, so a sorted input
    /// yields a deterministic chart. A parent's value is raised to at least
    /// the sum of its children, which keeps interior frames meaningful even
    /// when only leaf paths were measured.
    pub fn from_paths(paths: &[(String, f64)]) -> Vec<FlameFrame> {
        let mut roots: Vec<FlameFrame> = Vec::new();
        for (path, value) in paths {
            let mut level = &mut roots;
            let mut segments = path.split('/').filter(|s| !s.is_empty()).peekable();
            while let Some(segment) = segments.next() {
                let index = match level.iter().position(|f| f.label == segment) {
                    Some(i) => i,
                    None => {
                        level.push(FlameFrame::leaf(segment, 0.0));
                        level.len() - 1
                    }
                };
                if segments.peek().is_none() && value.is_finite() && *value > 0.0 {
                    level[index].value += value;
                }
                level = &mut level[index].children;
            }
        }
        fn raise(frames: &mut [FlameFrame]) {
            for frame in frames {
                raise(&mut frame.children);
                let child_sum: f64 = frame.children.iter().map(|c| c.value).sum();
                frame.value = frame.value.max(child_sum);
            }
        }
        raise(&mut roots);
        roots
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameFrame::depth)
            .max()
            .unwrap_or(0)
    }
}

/// An icicle-layout flame chart over a forest of [`FlameFrame`]s.
#[derive(Debug, Clone)]
pub struct FlameChart {
    /// Chart title, drawn top-left.
    pub title: String,
    /// Unit suffix for the root-total caption (e.g. `"ms"`).
    pub unit: String,
    /// Root frames, drawn left-to-right.
    pub roots: Vec<FlameFrame>,
    /// Viewport width in pixels.
    pub width: f64,
}

impl FlameChart {
    /// A chart with the default 640 px viewport width.
    pub fn new(title: impl Into<String>, unit: impl Into<String>, roots: Vec<FlameFrame>) -> Self {
        FlameChart {
            title: title.into(),
            unit: unit.into(),
            roots,
            width: 640.0,
        }
    }

    /// The height this chart occupies: title row plus one bar row per
    /// nesting level (at least one, so an empty chart still reserves room
    /// for its "no data" notice).
    pub fn height(&self) -> f64 {
        let depth = self
            .roots
            .iter()
            .map(FlameFrame::depth)
            .max()
            .unwrap_or(1)
            .max(1);
        TITLE_SPACE + depth as f64 * (ROW_HEIGHT + ROW_GAP) + MARGIN
    }

    /// Renders the chart into `svg` with its top-left corner at `(ox, oy)`.
    pub fn render_into(&self, svg: &mut Svg, ox: f64, oy: f64) {
        svg.group(ox, oy);
        svg.text(
            MARGIN,
            16.0,
            12.0,
            TextAnchor::Start,
            TEXT_COLOR,
            &self.title,
        );
        let total: f64 = self
            .roots
            .iter()
            .map(|f| {
                if f.value.is_finite() {
                    f.value.max(0.0)
                } else {
                    0.0
                }
            })
            .sum();
        if total <= 0.0 {
            svg.text(
                self.width / 2.0,
                TITLE_SPACE + ROW_HEIGHT,
                11.0,
                TextAnchor::Middle,
                MUTED_COLOR,
                "no data",
            );
            svg.group_end();
            return;
        }
        svg.text(
            self.width - MARGIN,
            16.0,
            10.0,
            TextAnchor::End,
            MUTED_COLOR,
            &format!("total {} {}", fmt_num(total), self.unit),
        );
        let span = self.width - 2.0 * MARGIN;
        let mut x = MARGIN;
        for frame in &self.roots {
            let w = frame_width(frame, total, span);
            self.render_frame(svg, frame, x, TITLE_SPACE, w);
            x += w;
        }
        svg.group_end();
    }

    fn render_frame(&self, svg: &mut Svg, frame: &FlameFrame, x: f64, y: f64, w: f64) {
        if w <= 0.5 {
            return; // invisible at this resolution; children are narrower still
        }
        svg.rect_alpha(x, y, w, ROW_HEIGHT, label_color(&frame.label), 0.85);
        if w >= MIN_LABEL_WIDTH {
            let fit = ((w - 8.0) / GLYPH_WIDTH) as usize;
            svg.text(
                x + 4.0,
                y + ROW_HEIGHT / 2.0 + 3.5,
                10.0,
                TextAnchor::Start,
                TEXT_COLOR,
                &truncate_label(&frame.label, fit),
            );
        }
        let child_sum: f64 = frame
            .children
            .iter()
            .map(|c| {
                if c.value.is_finite() {
                    c.value.max(0.0)
                } else {
                    0.0
                }
            })
            .sum();
        if child_sum <= 0.0 {
            return;
        }
        // Children scale to their own sum when it exceeds the parent (e.g.
        // a parent measured separately from its children), otherwise to the
        // parent's value so the self-time gap stays visible on the right.
        let denom = child_sum.max(frame.value);
        let mut cx = x;
        for child in &frame.children {
            let cw = frame_width(child, denom, w);
            self.render_frame(svg, child, cx, y + ROW_HEIGHT + ROW_GAP, cw);
            cx += cw;
        }
    }

    /// Renders the chart as a standalone document.
    pub fn to_svg(&self) -> String {
        let mut svg = Svg::new(self.width, self.height());
        self.render_into(&mut svg, 0.0, 0.0);
        svg.finish()
    }
}

fn frame_width(frame: &FlameFrame, denom: f64, span: f64) -> f64 {
    if !(frame.value.is_finite() && frame.value > 0.0 && denom > 0.0) {
        return 0.0;
    }
    (frame.value / denom) * span
}

/// Stable palette assignment from the label bytes (FNV-1a), so a span keeps
/// its colour across charts, runs, and journals.
fn label_color(label: &str) -> &'static str {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    PALETTE[(hash % PALETTE.len() as u64) as usize]
}

fn truncate_label(label: &str, fit: usize) -> String {
    if label.chars().count() <= fit {
        return label.to_string();
    }
    let kept: String = label.chars().take(fit.saturating_sub(1)).collect();
    format!("{kept}\u{2026}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_roots() -> Vec<FlameFrame> {
        FlameFrame::from_paths(&[
            ("run/iteration/nn.train".to_string(), 900.0),
            ("run/iteration/select".to_string(), 300.0),
            ("run/calibrate".to_string(), 200.0),
        ])
    }

    #[test]
    fn paths_build_a_nested_forest_with_raised_parents() {
        let roots = sample_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].label, "run");
        assert_eq!(roots[0].value, 1400.0); // raised to the child sum
        let labels: Vec<&str> = roots[0].children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["iteration", "calibrate"]);
        assert_eq!(roots[0].children[0].value, 1200.0);
        assert_eq!(roots[0].children[0].children.len(), 2);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let roots = FlameFrame::from_paths(&[("a/b".to_string(), 10.0), ("a/b".to_string(), 5.0)]);
        assert_eq!(roots[0].children[0].value, 15.0);
    }

    #[test]
    fn chart_contains_every_wide_frame_label() {
        let out = FlameChart::new("spans", "us", sample_roots()).to_svg();
        for label in ["run", "iteration", "nn.train", "select", "calibrate"] {
            assert!(out.contains(&format!(">{label}<")), "missing {label}");
        }
        assert!(out.contains("total 1400 us"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let chart = || FlameChart::new("spans", "us", sample_roots()).to_svg();
        assert_eq!(chart(), chart());
    }

    #[test]
    fn empty_and_nonfinite_frames_say_no_data() {
        let empty = FlameChart::new("spans", "us", vec![]).to_svg();
        assert!(empty.contains("no data"));
        let bad = FlameChart::new("spans", "us", vec![FlameFrame::leaf("x", f64::NAN)]).to_svg();
        assert!(bad.contains("no data"));
        assert!(!bad.contains("NaN"));
    }

    #[test]
    fn colors_depend_on_labels_not_order() {
        let a = FlameChart::new("t", "us", vec![FlameFrame::leaf("aa", 1.0)]).to_svg();
        let b = FlameChart::new(
            "t",
            "us",
            vec![FlameFrame::leaf("zz", 1.0), FlameFrame::leaf("aa", 1.0)],
        )
        .to_svg();
        let color_of = |svg: &str, label: &str| {
            // The rect preceding the label's text element carries its fill.
            let idx = svg.find(&format!(">{label}<")).unwrap();
            svg[..idx]
                .rfind("fill-opacity")
                .map(|i| svg[i - 10..i].to_string())
        };
        assert_eq!(color_of(&a, "aa"), color_of(&b, "aa"));
    }

    #[test]
    fn height_tracks_depth() {
        let flat = FlameChart::new("t", "us", vec![FlameFrame::leaf("a", 1.0)]);
        let deep = FlameChart::new("t", "us", sample_roots());
        assert!(deep.height() > flat.height());
    }
}
