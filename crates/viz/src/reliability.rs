//! Reliability diagrams: per-bin confidence vs. accuracy with the identity
//! diagonal and an ECE annotation.

use crate::{fmt_num, LinearScale, Svg, TextAnchor};

const AXIS_COLOR: &str = "#334155";
const GRID_COLOR: &str = "#e2e8f0";
const TEXT_COLOR: &str = "#0f172a";
const BAR_COLOR: &str = "#2563eb";
const GAP_COLOR: &str = "#dc2626";

/// One confidence bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelBin {
    /// Inclusive lower edge of the confidence bin.
    pub lower: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub upper: f64,
    /// Number of predictions falling in the bin.
    pub count: u64,
    /// Mean predicted confidence inside the bin.
    pub confidence: f64,
    /// Empirical accuracy inside the bin.
    pub accuracy: f64,
}

/// A reliability diagram: accuracy bars per confidence bin, the identity
/// diagonal for perfect calibration, and the miscalibration gap hatched on
/// top of each occupied bar.
#[derive(Debug, Clone)]
pub struct ReliabilityChart {
    /// Chart title, drawn top-left.
    pub title: String,
    /// The bins, in ascending confidence order.
    pub bins: Vec<RelBin>,
    /// Expected calibration error, annotated on the chart when finite.
    pub ece: f64,
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
}

impl ReliabilityChart {
    /// A diagram with the default 300×280 viewport.
    pub fn new(title: impl Into<String>, bins: Vec<RelBin>, ece: f64) -> ReliabilityChart {
        ReliabilityChart {
            title: title.into(),
            bins,
            ece,
            width: 300.0,
            height: 280.0,
        }
    }

    /// Renders the diagram into `svg` with its top-left corner at `(ox, oy)`.
    pub fn render_into(&self, svg: &mut Svg, ox: f64, oy: f64) {
        svg.group(ox, oy);
        let plot_x0 = 40.0;
        let plot_x1 = self.width - 14.0;
        let plot_y0 = 28.0;
        let plot_y1 = self.height - 34.0;

        let x_scale = LinearScale::new(0.0, 1.0, plot_x0, plot_x1);
        let y_scale = LinearScale::new(0.0, 1.0, plot_y1, plot_y0);

        svg.text(
            plot_x0,
            plot_y0 - 12.0,
            11.0,
            TextAnchor::Start,
            TEXT_COLOR,
            &self.title,
        );
        for tick in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let py = y_scale.map(tick);
            svg.line(plot_x0, py, plot_x1, py, GRID_COLOR, 1.0);
            svg.text(
                plot_x0 - 5.0,
                py + 3.0,
                8.0,
                TextAnchor::End,
                AXIS_COLOR,
                &fmt_num(tick),
            );
            let px = x_scale.map(tick);
            svg.text(
                px,
                plot_y1 + 12.0,
                8.0,
                TextAnchor::Middle,
                AXIS_COLOR,
                &fmt_num(tick),
            );
        }
        svg.text(
            (plot_x0 + plot_x1) / 2.0,
            plot_y1 + 24.0,
            9.0,
            TextAnchor::Middle,
            AXIS_COLOR,
            "confidence",
        );
        svg.text(
            plot_x0,
            plot_y0 - 2.0,
            9.0,
            TextAnchor::End,
            AXIS_COLOR,
            "accuracy",
        );

        let total: u64 = self.bins.iter().map(|b| b.count).sum();
        if total == 0 {
            svg.text(
                (plot_x0 + plot_x1) / 2.0,
                (plot_y0 + plot_y1) / 2.0,
                11.0,
                TextAnchor::Middle,
                AXIS_COLOR,
                "no predictions",
            );
        }
        for bin in &self.bins {
            if bin.count == 0 || !(bin.lower.is_finite() && bin.upper.is_finite()) {
                continue;
            }
            let accuracy = if bin.accuracy.is_finite() {
                bin.accuracy.clamp(0.0, 1.0)
            } else {
                0.0
            };
            let confidence = if bin.confidence.is_finite() {
                bin.confidence.clamp(0.0, 1.0)
            } else {
                0.0
            };
            let bx0 = x_scale.map(bin.lower.clamp(0.0, 1.0));
            let bx1 = x_scale.map(bin.upper.clamp(0.0, 1.0));
            let top = y_scale.map(accuracy);
            svg.rect_alpha(
                bx0 + 1.0,
                top,
                (bx1 - bx0 - 2.0).max(0.5),
                plot_y1 - top,
                BAR_COLOR,
                0.8,
            );
            // Gap between confidence and accuracy (the ECE contribution).
            let conf_y = y_scale.map(confidence);
            let (gap_top, gap_bottom) = if conf_y < top {
                (conf_y, top)
            } else {
                (top, conf_y)
            };
            if gap_bottom - gap_top > 0.5 {
                svg.rect_alpha(
                    bx0 + 1.0,
                    gap_top,
                    (bx1 - bx0 - 2.0).max(0.5),
                    gap_bottom - gap_top,
                    GAP_COLOR,
                    0.35,
                );
            }
        }
        // Identity diagonal: a perfectly calibrated model lies on this line.
        svg.dashed_line(
            x_scale.map(0.0),
            y_scale.map(0.0),
            x_scale.map(1.0),
            y_scale.map(1.0),
            AXIS_COLOR,
            1.0,
            4.0,
        );
        if self.ece.is_finite() {
            svg.text(
                plot_x0 + 6.0,
                plot_y0 + 12.0,
                10.0,
                TextAnchor::Start,
                TEXT_COLOR,
                &format!("ECE {}", fmt_num(self.ece)),
            );
        }
        svg.rect_outline(
            plot_x0,
            plot_y0,
            plot_x1 - plot_x0,
            plot_y1 - plot_y0,
            AXIS_COLOR,
            1.0,
            None,
        );
        svg.group_end();
    }

    /// Renders the diagram as a standalone document.
    pub fn to_svg(&self) -> String {
        let mut svg = Svg::new(self.width, self.height);
        self.render_into(&mut svg, 0.0, 0.0);
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bins() -> Vec<RelBin> {
        vec![
            RelBin {
                lower: 0.5,
                upper: 0.6,
                count: 10,
                confidence: 0.55,
                accuracy: 0.4,
            },
            RelBin {
                lower: 0.9,
                upper: 1.0,
                count: 40,
                confidence: 0.95,
                accuracy: 0.97,
            },
        ]
    }

    #[test]
    fn renders_bars_diagonal_and_ece() {
        let out = ReliabilityChart::new("before", sample_bins(), 0.083).to_svg();
        assert!(out.contains("ECE 0.08"));
        assert!(out.contains("stroke-dasharray"));
        assert!(out.contains("confidence") && out.contains("accuracy"));
    }

    #[test]
    fn empty_diagram_says_no_predictions() {
        let out = ReliabilityChart::new("empty", vec![], 0.0).to_svg();
        assert!(out.contains("no predictions"));
    }

    #[test]
    fn nonfinite_bins_never_leak_nan() {
        let bins = vec![RelBin {
            lower: 0.0,
            upper: 0.1,
            count: 3,
            confidence: f64::NAN,
            accuracy: f64::INFINITY,
        }];
        let out = ReliabilityChart::new("nan", bins, f64::NAN).to_svg();
        assert!(!out.contains("NaN") && !out.contains("inf"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let make = || ReliabilityChart::new("d", sample_bins(), 0.05).to_svg();
        assert_eq!(make(), make());
    }
}
