//! Binned 2-D density rendered as a colour-ramped cell grid.

use crate::chart::draw_frame_and_axes;
use crate::{ramp_color, LinearScale, Svg, TextAnchor};

/// A binned 2-D density plot: points are counted into a fixed grid and each
/// cell is filled from the sequential colour ramp, normalised by the maximum
/// cell count. Useful as a background layer under a scatter (e.g. the
/// uncertainty-vs-diversity selection plane).
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Chart title, drawn top-left.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// `(x, y)` samples; non-finite entries are ignored.
    pub points: Vec<(f64, f64)>,
    /// Grid resolution (cells per axis).
    pub bins: usize,
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
}

impl Heatmap {
    /// A heatmap with the default 420×360 viewport and a 24×24 grid.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Heatmap {
        Heatmap {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points,
            bins: 24,
            width: 420.0,
            height: 360.0,
        }
    }

    /// Renders the heatmap into `svg` with its top-left corner at
    /// `(ox, oy)`, returning the data→pixel scales so callers can overlay
    /// scatter points in the same coordinate frame.
    pub fn render_into(&self, svg: &mut Svg, ox: f64, oy: f64) -> (LinearScale, LinearScale) {
        svg.group(ox, oy);
        let plot_x0 = 52.0;
        let plot_x1 = self.width - 16.0;
        let plot_y0 = 30.0;
        let plot_y1 = self.height - 40.0;

        let finite: Vec<(f64, f64)> = self
            .points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let xs: Vec<f64> = finite.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = finite.iter().map(|p| p.1).collect();
        let x_scale = LinearScale::covering(&xs, plot_x0, plot_x1, 0.02);
        let y_scale = LinearScale::covering(&ys, plot_y1, plot_y0, 0.02);

        let bins = self.bins.max(1);
        let mut counts = vec![0u32; bins * bins];
        let dx = x_scale.domain_max() - x_scale.domain_min();
        let dy = y_scale.domain_max() - y_scale.domain_min();
        for &(x, y) in &finite {
            let bx = if dx > f64::EPSILON {
                (((x - x_scale.domain_min()) / dx) * bins as f64) as usize
            } else {
                0
            };
            let by = if dy > f64::EPSILON {
                (((y - y_scale.domain_min()) / dy) * bins as f64) as usize
            } else {
                0
            };
            counts[by.min(bins - 1) * bins + bx.min(bins - 1)] += 1;
        }
        let max_count = counts.iter().copied().max().unwrap_or(0);

        if max_count > 0 {
            let cell_w = (plot_x1 - plot_x0) / bins as f64;
            let cell_h = (plot_y1 - plot_y0) / bins as f64;
            for by in 0..bins {
                for bx in 0..bins {
                    let count = counts[by * bins + bx];
                    if count == 0 {
                        continue;
                    }
                    let t = f64::from(count) / f64::from(max_count);
                    let cx = plot_x0 + cell_w * bx as f64;
                    // Row 0 is the domain minimum, which sits at the bottom
                    // of the plot in SVG's y-down frame.
                    let cy = plot_y1 - cell_h * (by + 1) as f64;
                    svg.rect_alpha(cx, cy, cell_w, cell_h, &ramp_color(t), 0.85);
                }
            }
        } else {
            svg.text(
                (plot_x0 + plot_x1) / 2.0,
                (plot_y0 + plot_y1) / 2.0,
                11.0,
                TextAnchor::Middle,
                "#334155",
                "no data",
            );
        }

        draw_frame_and_axes(
            svg,
            &x_scale,
            &y_scale,
            (plot_x0, plot_y0, plot_x1, plot_y1),
            &self.title,
            &self.x_label,
            &self.y_label,
        );
        svg.group_end();
        (x_scale, y_scale)
    }

    /// Renders the heatmap as a standalone document.
    pub fn to_svg(&self) -> String {
        let mut svg = Svg::new(self.width, self.height);
        self.render_into(&mut svg, 0.0, 0.0);
        svg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_region_is_darker_than_sparse() {
        let mut points = vec![(0.1, 0.1); 20];
        points.push((0.9, 0.9));
        let out = Heatmap::new("density", "x", "y", points).to_svg();
        // Max-count cell draws at full ramp; the singleton draws lighter.
        assert!(out.contains(&ramp_color(1.0)));
        assert!(out.contains(&ramp_color(1.0 / 20.0)));
    }

    #[test]
    fn empty_heatmap_says_no_data() {
        let out = Heatmap::new("empty", "x", "y", vec![]).to_svg();
        assert!(out.contains("no data"));
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn nonfinite_points_are_ignored() {
        let out = Heatmap::new(
            "nan",
            "x",
            "y",
            vec![(f64::NAN, 0.5), (0.5, f64::INFINITY), (0.5, 0.5)],
        )
        .to_svg();
        assert!(!out.contains("NaN"));
        assert!(out.contains(&ramp_color(1.0)));
    }

    #[test]
    fn rendering_is_deterministic() {
        let make = || Heatmap::new("d", "x", "y", vec![(0.2, 0.3), (0.7, 0.8)]).to_svg();
        assert_eq!(make(), make());
    }
}
