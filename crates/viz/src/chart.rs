//! Axis-and-legend chart primitives: multi-series line/step charts and
//! category bar charts.

use crate::{fmt_num, LinearScale, Svg, TextAnchor, PALETTE};

const MARGIN_LEFT: f64 = 52.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 30.0;
const MARGIN_BOTTOM: f64 = 40.0;
const AXIS_COLOR: &str = "#334155";
const GRID_COLOR: &str = "#e2e8f0";
const TEXT_COLOR: &str = "#0f172a";

/// One named line-chart series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in drawing order; non-finite points are skipped.
    pub points: Vec<(f64, f64)>,
    /// Explicit colour; `None` assigns from [`PALETTE`] by series index.
    pub color: Option<String>,
}

impl Series {
    /// A series with palette-assigned colour.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
            color: None,
        }
    }

    /// A series with an explicit colour.
    pub fn with_color(
        label: impl Into<String>,
        points: Vec<(f64, f64)>,
        color: impl Into<String>,
    ) -> Series {
        Series {
            label: label.into(),
            points,
            color: Some(color.into()),
        }
    }
}

/// A multi-series line (or step) chart with axes, grid, and legend.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title, drawn top-left.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// The series, drawn in order (later series on top).
    pub series: Vec<Series>,
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
    /// Draw horizontal steps between samples instead of straight segments.
    pub step: bool,
    /// Draw a small marker on every sample.
    pub markers: bool,
}

impl LineChart {
    /// A chart with the default 640×280 viewport, straight segments, and
    /// markers on.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
            width: 640.0,
            height: 280.0,
            step: false,
            markers: true,
        }
    }

    fn series_color(&self, index: usize) -> String {
        self.series[index]
            .color
            .clone()
            .unwrap_or_else(|| PALETTE[index % PALETTE.len()].to_string())
    }

    /// Renders the chart into `svg` with its top-left corner at `(ox, oy)`.
    pub fn render_into(&self, svg: &mut Svg, ox: f64, oy: f64) {
        svg.group(ox, oy);
        let plot_x0 = MARGIN_LEFT;
        let plot_x1 = self.width - MARGIN_RIGHT;
        let plot_y0 = MARGIN_TOP;
        let plot_y1 = self.height - MARGIN_BOTTOM;

        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let x_scale = LinearScale::covering(&xs, plot_x0, plot_x1, 0.02);
        let y_scale = LinearScale::covering(&ys, plot_y1, plot_y0, 0.08);

        draw_frame_and_axes(
            svg,
            &x_scale,
            &y_scale,
            (plot_x0, plot_y0, plot_x1, plot_y1),
            &self.title,
            &self.x_label,
            &self.y_label,
        );

        for (i, series) in self.series.iter().enumerate() {
            let color = self.series_color(i);
            let pixels: Vec<(f64, f64)> = if self.step {
                let mut path = Vec::new();
                let mut last_y: Option<f64> = None;
                for &(x, y) in &series.points {
                    if !(x.is_finite() && y.is_finite()) {
                        continue;
                    }
                    let px = x_scale.map(x);
                    let py = y_scale.map(y);
                    if let Some(prev) = last_y {
                        path.push((px, prev));
                    }
                    path.push((px, py));
                    last_y = Some(py);
                }
                path
            } else {
                series
                    .points
                    .iter()
                    .filter(|(x, y)| x.is_finite() && y.is_finite())
                    .map(|&(x, y)| (x_scale.map(x), y_scale.map(y)))
                    .collect()
            };
            svg.polyline(&pixels, &color, 1.6);
            if self.markers {
                for &(x, y) in &series.points {
                    if x.is_finite() && y.is_finite() {
                        svg.circle(x_scale.map(x), y_scale.map(y), 2.2, &color);
                    }
                }
            }
        }

        // Legend, top-right inside the plot.
        let mut ly = plot_y0 + 12.0;
        for (i, series) in self.series.iter().enumerate() {
            let color = self.series_color(i);
            svg.line(
                plot_x1 - 86.0,
                ly - 3.0,
                plot_x1 - 70.0,
                ly - 3.0,
                &color,
                2.0,
            );
            svg.text(
                plot_x1 - 64.0,
                ly,
                10.0,
                TextAnchor::Start,
                TEXT_COLOR,
                &series.label,
            );
            ly += 14.0;
        }
        svg.group_end();
    }

    /// Renders the chart as a standalone document.
    pub fn to_svg(&self) -> String {
        let mut svg = Svg::new(self.width, self.height);
        self.render_into(&mut svg, 0.0, 0.0);
        svg.finish()
    }
}

/// A category bar chart (one bar per labelled value).
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title, drawn top-left.
    pub title: String,
    /// Y-axis caption.
    pub y_label: String,
    /// `(category, value)` bars, drawn left to right.
    pub bars: Vec<(String, f64)>,
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
}

impl BarChart {
    /// A bar chart with the default 420×260 viewport.
    pub fn new(
        title: impl Into<String>,
        y_label: impl Into<String>,
        bars: Vec<(String, f64)>,
    ) -> BarChart {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            bars,
            width: 420.0,
            height: 260.0,
        }
    }

    /// Renders the chart into `svg` with its top-left corner at `(ox, oy)`.
    pub fn render_into(&self, svg: &mut Svg, ox: f64, oy: f64) {
        svg.group(ox, oy);
        let plot_x0 = MARGIN_LEFT;
        let plot_x1 = self.width - MARGIN_RIGHT;
        let plot_y0 = MARGIN_TOP;
        let plot_y1 = self.height - MARGIN_BOTTOM;

        let values: Vec<f64> = self.bars.iter().map(|(_, v)| *v).collect();
        let mut padded = values.clone();
        padded.push(0.0); // bars grow from zero
        let y_scale = LinearScale::covering(&padded, plot_y1, plot_y0, 0.05);

        draw_frame_and_axes(
            svg,
            &LinearScale::new(0.0, 1.0, plot_x0, plot_x1),
            &y_scale,
            (plot_x0, plot_y0, plot_x1, plot_y1),
            &self.title,
            "",
            &self.y_label,
        );

        let n = self.bars.len();
        if n == 0 {
            svg.text(
                (plot_x0 + plot_x1) / 2.0,
                (plot_y0 + plot_y1) / 2.0,
                11.0,
                TextAnchor::Middle,
                AXIS_COLOR,
                "no data",
            );
            svg.group_end();
            return;
        }
        let slot = (plot_x1 - plot_x0) / n as f64;
        let bar_w = slot * 0.6;
        let zero_y = y_scale.map(0.0);
        for (i, (label, value)) in self.bars.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let x = plot_x0 + slot * i as f64 + (slot - bar_w) / 2.0;
            let v = if value.is_finite() { *value } else { 0.0 };
            let top = y_scale.map(v);
            let (y, h) = if top <= zero_y {
                (top, zero_y - top)
            } else {
                (zero_y, top - zero_y)
            };
            svg.rect(x, y, bar_w, h, color);
            svg.text(
                x + bar_w / 2.0,
                y - 4.0,
                10.0,
                TextAnchor::Middle,
                TEXT_COLOR,
                &fmt_num(v),
            );
            svg.text(
                x + bar_w / 2.0,
                plot_y1 + 14.0,
                10.0,
                TextAnchor::Middle,
                TEXT_COLOR,
                label,
            );
        }
        svg.group_end();
    }

    /// Renders the chart as a standalone document.
    pub fn to_svg(&self) -> String {
        let mut svg = Svg::new(self.width, self.height);
        self.render_into(&mut svg, 0.0, 0.0);
        svg.finish()
    }
}

/// Shared frame: plot border, y grid + tick labels, x tick labels (when the
/// x scale is meaningful), title and axis captions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn draw_frame_and_axes(
    svg: &mut Svg,
    x_scale: &LinearScale,
    y_scale: &LinearScale,
    plot: (f64, f64, f64, f64),
    title: &str,
    x_label: &str,
    y_label: &str,
) {
    let (x0, y0, x1, y1) = plot;
    svg.text(x0, y0 - 12.0, 12.0, TextAnchor::Start, TEXT_COLOR, title);

    for tick in y_scale.ticks(5) {
        let py = y_scale.map(tick);
        svg.line(x0, py, x1, py, GRID_COLOR, 1.0);
        svg.text(
            x0 - 6.0,
            py + 3.0,
            9.0,
            TextAnchor::End,
            AXIS_COLOR,
            &fmt_num(tick),
        );
    }
    if !x_label.is_empty() {
        for tick in x_scale.ticks(6) {
            let px = x_scale.map(tick);
            svg.line(px, y1, px, y1 + 4.0, AXIS_COLOR, 1.0);
            svg.text(
                px,
                y1 + 14.0,
                9.0,
                TextAnchor::Middle,
                AXIS_COLOR,
                &fmt_num(tick),
            );
        }
        svg.text(
            (x0 + x1) / 2.0,
            y1 + 28.0,
            10.0,
            TextAnchor::Middle,
            AXIS_COLOR,
            x_label,
        );
    }
    if !y_label.is_empty() {
        svg.text(x0, y0 - 2.0, 9.0, TextAnchor::End, AXIS_COLOR, y_label);
    }
    svg.rect_outline(x0, y0, x1 - x0, y1 - y0, AXIS_COLOR, 1.0, None);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> LineChart {
        LineChart::new(
            "temperature",
            "iteration",
            "T",
            vec![
                Series::new("Ours", vec![(1.0, 1.2), (2.0, 1.4), (3.0, 1.3)]),
                Series::new("Random", vec![(1.0, 1.0), (2.0, 1.0), (3.0, 1.1)]),
            ],
        )
    }

    #[test]
    fn line_chart_contains_title_legend_and_series() {
        let out = sample_chart().to_svg();
        assert!(out.contains(">temperature<"));
        assert!(out.contains(">Ours<"));
        assert!(out.contains(">Random<"));
        assert!(out.matches("<polyline").count() >= 2);
    }

    #[test]
    fn line_chart_is_deterministic() {
        assert_eq!(sample_chart().to_svg(), sample_chart().to_svg());
    }

    #[test]
    fn constant_series_draws_a_flat_line() {
        let chart = LineChart::new(
            "flat",
            "x",
            "y",
            vec![Series::new("c", vec![(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)])],
        );
        let out = chart.to_svg();
        // All three points map to the same y — the polyline's y values are equal.
        assert!(out.contains("<polyline"));
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn nan_series_renders_without_garbage() {
        let chart = LineChart::new(
            "nan",
            "x",
            "y",
            vec![Series::new(
                "n",
                vec![
                    (0.0, f64::NAN),
                    (1.0, 1.0),
                    (2.0, f64::INFINITY),
                    (3.0, 3.0),
                ],
            )],
        );
        let out = chart.to_svg();
        assert!(!out.contains("NaN") && !out.contains("inf"));
    }

    #[test]
    fn step_mode_inserts_horizontal_segments() {
        let mut chart = sample_chart();
        chart.step = true;
        let out = chart.to_svg();
        assert!(out.contains("<polyline"));
    }

    #[test]
    fn bar_chart_labels_every_category() {
        let chart = BarChart::new(
            "accuracy",
            "%",
            vec![("Ours".to_string(), 96.5), ("TS".to_string(), 94.0)],
        );
        let out = chart.to_svg();
        assert!(out.contains(">Ours<") && out.contains(">TS<"));
        assert!(out.contains(">96.5<"));
        assert_eq!(out, {
            let again = BarChart::new(
                "accuracy",
                "%",
                vec![("Ours".to_string(), 96.5), ("TS".to_string(), 94.0)],
            );
            again.to_svg()
        });
    }

    #[test]
    fn empty_bar_chart_says_no_data() {
        let out = BarChart::new("empty", "y", vec![]).to_svg();
        assert!(out.contains("no data"));
    }

    #[test]
    fn nonfinite_bar_draws_as_zero() {
        let out = BarChart::new("x", "y", vec![("a".to_string(), f64::NAN)]).to_svg();
        assert!(!out.contains("NaN"));
    }
}
