//! Latency panels for serving load tests.
//!
//! `lithohd-loadgen` measures per-request wall-clock latency against a
//! running `hotspot-serve` instance and renders two artifacts with this
//! module: a quantile bar panel (p50/p95/p99 plus the mean) and a
//! timeline of per-request latency in arrival order. Both follow the
//! crate's determinism contract — identical samples render byte-identical
//! SVG.

use crate::{BarChart, LineChart, Series, Svg};

/// Latency quantile summary of one load-test run, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Sustained throughput in requests per second.
    pub throughput_rps: f64,
}

/// Renders the quantile bar panel: p50/p95/p99/mean bars with the
/// throughput in the title line.
pub fn latency_quantile_panel(title: &str, summary: &LatencySummary) -> String {
    let chart = BarChart::new(
        format!("{title} — {:.0} req/s", summary.throughput_rps),
        "latency (ms)",
        vec![
            ("p50".to_string(), summary.p50_ms),
            ("p95".to_string(), summary.p95_ms),
            ("p99".to_string(), summary.p99_ms),
            ("mean".to_string(), summary.mean_ms),
        ],
    );
    chart.to_svg()
}

/// Renders the per-request latency timeline (request ordinal on x,
/// milliseconds on y) — tail spikes and batching waves read directly off
/// this panel.
pub fn latency_timeline_panel(title: &str, latencies_ms: &[f64]) -> String {
    let points: Vec<(f64, f64)> = latencies_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| (i as f64, ms))
        .collect();
    let mut chart = LineChart::new(
        title,
        "request",
        "latency (ms)",
        vec![Series::new("latency", points)],
    );
    // Per-request markers turn into an unreadable smear past a few hundred
    // samples; the line alone carries the shape.
    chart.markers = latencies_ms.len() <= 64;
    chart.to_svg()
}

/// Renders both panels stacked into one document (quantiles above the
/// timeline) for a single-artifact upload.
pub fn latency_report_panel(title: &str, summary: &LatencySummary, latencies_ms: &[f64]) -> String {
    let quantiles = BarChart::new(
        format!("{title} — {:.0} req/s", summary.throughput_rps),
        "latency (ms)",
        vec![
            ("p50".to_string(), summary.p50_ms),
            ("p95".to_string(), summary.p95_ms),
            ("p99".to_string(), summary.p99_ms),
            ("mean".to_string(), summary.mean_ms),
        ],
    );
    let points: Vec<(f64, f64)> = latencies_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| (i as f64, ms))
        .collect();
    let mut timeline = LineChart::new(
        format!("{title} — per-request"),
        "request",
        "latency (ms)",
        vec![Series::new("latency", points)],
    );
    timeline.markers = latencies_ms.len() <= 64;
    let width = quantiles.width.max(timeline.width);
    let mut svg = Svg::new(width, quantiles.height + timeline.height);
    quantiles.render_into(&mut svg, 0.0, 0.0);
    timeline.render_into(&mut svg, 0.0, quantiles.height);
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> LatencySummary {
        LatencySummary {
            p50_ms: 1.25,
            p95_ms: 3.5,
            p99_ms: 7.0,
            mean_ms: 1.75,
            throughput_rps: 420.0,
        }
    }

    #[test]
    fn panels_are_deterministic_and_well_formed() {
        let latencies = vec![1.0, 2.0, 1.5, 9.0, 1.2];
        let a = latency_report_panel("score", &summary(), &latencies);
        let b = latency_report_panel("score", &summary(), &latencies);
        assert_eq!(a, b, "same inputs must render byte-identical SVG");
        assert!(a.starts_with("<svg"));
        assert!(a.ends_with("</svg>\n") || a.ends_with("</svg>"));
        assert!(a.contains("p99"));
        assert!(a.contains("420 req/s"));
    }

    #[test]
    fn timeline_drops_markers_on_large_runs() {
        let small = latency_timeline_panel("t", &[1.0; 8]);
        let large = latency_timeline_panel("t", &vec![1.0; 500]);
        assert!(small.contains("circle"));
        assert!(!large.contains("circle"));
    }
}
