//! Linear data-to-pixel scales with "nice" tick generation.

/// A linear mapping from a data domain to a pixel range. Handles inverted
/// ranges (SVG y grows downward) and degenerate domains (a constant series
/// maps to the range midpoint, so flat data draws a flat line).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    d0: f64,
    d1: f64,
    r0: f64,
    r1: f64,
}

impl LinearScale {
    /// A scale mapping `[d0, d1]` onto `[r0, r1]`. Non-finite domain edges
    /// are replaced by `0`/`1` so a pathological series still renders.
    pub fn new(d0: f64, d1: f64, r0: f64, r1: f64) -> LinearScale {
        let (d0, d1) = if d0.is_finite() && d1.is_finite() {
            (d0, d1)
        } else {
            (0.0, 1.0)
        };
        LinearScale { d0, d1, r0, r1 }
    }

    /// A scale whose domain covers `values` (ignoring non-finite entries),
    /// padded by `pad` fraction of the span on each side. Empty or fully
    /// non-finite input falls back to the unit domain.
    pub fn covering(values: &[f64], r0: f64, r1: f64, pad: f64) -> LinearScale {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo > hi {
            return LinearScale::new(0.0, 1.0, r0, r1);
        }
        let span = hi - lo;
        LinearScale::new(lo - span * pad, hi + span * pad, r0, r1)
    }

    /// The domain's lower edge.
    pub fn domain_min(&self) -> f64 {
        self.d0.min(self.d1)
    }

    /// The domain's upper edge.
    pub fn domain_max(&self) -> f64 {
        self.d0.max(self.d1)
    }

    /// Maps a data value into the pixel range. A degenerate domain maps
    /// everything to the range midpoint; non-finite input maps to `r0`.
    pub fn map(&self, v: f64) -> f64 {
        if !v.is_finite() {
            return self.r0;
        }
        let span = self.d1 - self.d0;
        if span.abs() < f64::EPSILON {
            return (self.r0 + self.r1) / 2.0;
        }
        self.r0 + (v - self.d0) / span * (self.r1 - self.r0)
    }

    /// Around `count` round-valued ticks covering the domain: steps are
    /// `10^k × {1, 2, 5}`, so labels stay short and exact.
    pub fn ticks(&self, count: usize) -> Vec<f64> {
        let lo = self.domain_min();
        let hi = self.domain_max();
        let span = hi - lo;
        if !(span.is_finite()) || span < f64::EPSILON || count == 0 {
            return vec![lo];
        }
        let raw_step = span / count as f64;
        let magnitude = 10f64.powf(raw_step.log10().floor());
        let residual = raw_step / magnitude;
        let nice = if residual < 1.5 {
            1.0
        } else if residual < 3.5 {
            2.0
        } else if residual < 7.5 {
            5.0
        } else {
            10.0
        };
        let step = nice * magnitude;
        let first = (lo / step).ceil() * step;
        let mut ticks = Vec::new();
        let mut t = first;
        // Bounded loop: at most ~2×count ticks fit in the span by
        // construction, but guard against float stalls anyway.
        for _ in 0..200 {
            if t > hi + step * 1e-9 {
                break;
            }
            // Snap near-zero ticks to exactly zero for clean labels.
            ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
            t += step;
        }
        if ticks.is_empty() {
            ticks.push(lo);
        }
        ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_linearly() {
        let s = LinearScale::new(0.0, 10.0, 0.0, 100.0);
        assert_eq!(s.map(0.0), 0.0);
        assert_eq!(s.map(5.0), 50.0);
        assert_eq!(s.map(10.0), 100.0);
    }

    #[test]
    fn inverted_range_flips() {
        let s = LinearScale::new(0.0, 1.0, 100.0, 0.0);
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(1.0), 0.0);
    }

    #[test]
    fn degenerate_domain_maps_to_midpoint() {
        let s = LinearScale::new(3.0, 3.0, 0.0, 100.0);
        assert_eq!(s.map(3.0), 50.0);
        assert_eq!(s.map(99.0), 50.0);
    }

    #[test]
    fn nonfinite_inputs_are_absorbed() {
        let s = LinearScale::new(f64::NAN, 1.0, 0.0, 10.0);
        assert_eq!(s.map(0.5), 5.0); // fell back to the unit domain
        let s = LinearScale::new(0.0, 1.0, 0.0, 10.0);
        assert_eq!(s.map(f64::NAN), 0.0);
    }

    #[test]
    fn covering_ignores_nonfinite_values() {
        let s = LinearScale::covering(&[1.0, f64::NAN, 3.0], 0.0, 10.0, 0.0);
        assert_eq!(s.domain_min(), 1.0);
        assert_eq!(s.domain_max(), 3.0);
        let empty = LinearScale::covering(&[f64::NAN], 0.0, 10.0, 0.0);
        assert_eq!(empty.domain_min(), 0.0);
        assert_eq!(empty.domain_max(), 1.0);
    }

    #[test]
    fn ticks_are_round_and_cover_the_domain() {
        let s = LinearScale::new(0.0, 10.0, 0.0, 1.0);
        let ticks = s.ticks(5);
        assert_eq!(ticks, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let s = LinearScale::new(0.13, 0.87, 0.0, 1.0);
        for t in s.ticks(4) {
            assert!((0.13..=0.87).contains(&t));
        }
    }

    #[test]
    fn ticks_on_constant_domain_yield_one_tick() {
        let s = LinearScale::new(2.0, 2.0, 0.0, 1.0);
        assert_eq!(s.ticks(5), vec![2.0]);
    }
}
