use crate::{project_capped_simplex, QpProblem};

/// A relaxed solution of a capped-simplex QP.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolution {
    /// The relaxed selection vector, each entry in `[0, 1]`, summing to `k`.
    pub values: Vec<f64>,
    /// Objective at the returned point.
    pub objective: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

impl QpSolution {
    /// Indices of the `k` largest entries — the usual rounding of the
    /// relaxation back to a discrete batch. `k` is the floor of the budget.
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_by(|&a, &b| {
            self.values[b]
                .partial_cmp(&self.values[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(k);
        order
    }
}

/// Projected-gradient solver for [`QpProblem`].
///
/// Runs gradient steps of size `1 / L` (with `L` a cheap Lipschitz bound on
/// the quadratic term) followed by Euclidean projection onto the capped
/// simplex, until the iterate moves less than `tol` or `max_iters` is hit.
#[derive(Debug, Clone, PartialEq)]
pub struct QpSolver {
    /// Maximum projected-gradient iterations.
    pub max_iters: usize,
    /// Termination threshold on the iterate's infinity-norm movement.
    pub tol: f64,
}

impl Default for QpSolver {
    fn default() -> Self {
        QpSolver {
            max_iters: 300,
            tol: 1e-7,
        }
    }
}

impl QpSolver {
    /// Creates a solver with explicit limits.
    ///
    /// # Panics
    ///
    /// Panics when `max_iters` is zero or `tol` is not positive.
    pub fn new(max_iters: usize, tol: f64) -> Self {
        assert!(max_iters > 0, "iteration limit must be positive");
        assert!(tol.is_finite() && tol > 0.0, "tolerance must be positive");
        QpSolver { max_iters, tol }
    }

    /// Solves the problem from the uniform feasible start `s = k/n`.
    pub fn solve(&self, problem: &QpProblem) -> QpSolution {
        let n = problem.len();
        if n == 0 {
            return QpSolution {
                values: Vec::new(),
                objective: 0.0,
                iterations: 0,
            };
        }
        let k = problem.budget();
        let step = 1.0 / problem.lipschitz_bound().max(1.0);
        let mut s = vec![k / n as f64; n];
        let mut grad = vec![0.0f64; n];
        let mut iterations = 0;
        for it in 0..self.max_iters {
            iterations = it + 1;
            problem.gradient(&s, &mut grad);
            let proposal: Vec<f64> = s
                .iter()
                .zip(&grad)
                .map(|(&si, &gi)| si - step * gi)
                .collect();
            let next = project_capped_simplex(&proposal, k);
            let movement = s
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            s = next;
            if movement < self.tol {
                break;
            }
        }
        let objective = problem.objective(&s);
        QpSolution {
            values: s,
            objective,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_problem_picks_cheapest() {
        // Pure linear: pick the 2 most negative costs.
        let c = vec![3.0, -5.0, 1.0, -4.0];
        let p = QpProblem::new(vec![0.0; 16], c, 2.0).unwrap();
        let sol = QpSolver::default().solve(&p);
        let picked = sol.top_k_indices(2);
        assert!(picked.contains(&1) && picked.contains(&3), "{picked:?}");
        assert!((sol.values[1] - 1.0).abs() < 1e-5);
        assert!((sol.values[3] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn quadratic_repulsion_spreads_selection() {
        // Three items; items 0 and 1 are identical (strong mutual penalty),
        // item 2 is independent. Budget 2 should pick one of {0,1} plus 2.
        #[rustfmt::skip]
        let q = vec![
            0.0, 8.0, 0.0,
            8.0, 0.0, 0.0,
            0.0, 0.0, 0.0,
        ];
        let c = vec![-1.0, -1.0, -0.5];
        let p = QpProblem::new(q, c, 2.0).unwrap();
        let sol = QpSolver::default().solve(&p);
        assert!(sol.values[2] > 0.9, "{:?}", sol.values);
        assert!(
            (sol.values[0] + sol.values[1] - 1.0).abs() < 0.1,
            "{:?}",
            sol.values
        );
    }

    #[test]
    fn solution_is_feasible() {
        let q = vec![1.0, 0.2, 0.2, 1.0];
        let p = QpProblem::new(q, vec![-0.3, -0.6], 1.0).unwrap();
        let sol = QpSolver::default().solve(&p);
        let sum: f64 = sol.values.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for &v in &sol.values {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn objective_not_worse_than_start() {
        let n = 12;
        let mut q = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                q[i * n + j] = if i == j { 2.0 } else { 0.3 };
            }
        }
        let c: Vec<f64> = (0..n).map(|i| -((i % 5) as f64)).collect();
        let p = QpProblem::new(q, c, 4.0).unwrap();
        let start = vec![4.0 / n as f64; n];
        let sol = QpSolver::default().solve(&p);
        assert!(sol.objective <= p.objective(&start) + 1e-9);
    }

    #[test]
    fn empty_problem() {
        let p = QpProblem::new(Vec::new(), Vec::new(), 0.0).unwrap();
        let sol = QpSolver::default().solve(&p);
        assert!(sol.values.is_empty());
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn top_k_orders_by_value() {
        let sol = QpSolution {
            values: vec![0.2, 0.9, 0.5],
            objective: 0.0,
            iterations: 1,
        };
        assert_eq!(sol.top_k_indices(2), vec![1, 2]);
    }

    /// Brute-force binary optimum of the QP over `{s ∈ {0,1}ⁿ : Σs = k}`.
    fn binary_optimum(problem: &QpProblem, k: usize) -> f64 {
        let n = problem.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let s: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            best = best.min(problem.objective(&s));
        }
        best
    }

    #[test]
    fn relaxation_lower_bounds_the_binary_optimum() {
        // The capped simplex contains every feasible binary vector, so the
        // relaxed optimum can never exceed the best binary selection — the
        // property the [14]-style selector's rounding step relies on.
        // Q = AᵀA is positive semi-definite, so the problem is convex and
        // projected gradient reaches the global relaxed optimum, which must
        // lower-bound every feasible binary point.
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for trial in 0..10 {
            let n = 6;
            let k = 2 + trial % 3;
            let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut q = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for r in 0..n {
                        acc += a[r * n + i] * a[r * n + j];
                    }
                    q[i * n + j] = acc;
                }
            }
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..0.0)).collect();
            let problem = QpProblem::new(q, c, k as f64).unwrap();
            let relaxed = QpSolver::new(2000, 1e-10).solve(&problem).objective;
            let binary = binary_optimum(&problem, k);
            assert!(
                relaxed <= binary + 1e-6,
                "trial {trial}: relaxed {relaxed} exceeds binary optimum {binary}"
            );
        }
    }
}
