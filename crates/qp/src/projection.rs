/// Euclidean projection of `x` onto the capped simplex
/// `{ s : 0 ≤ sᵢ ≤ 1, Σ sᵢ = k }`.
///
/// The projection is `sᵢ = clamp(xᵢ − τ, 0, 1)` for the unique shift `τ`
/// making the coordinates sum to `k`; `τ` is found by bisection, which is
/// robust and O(n log(1/ε)).
///
/// # Panics
///
/// Panics when `k` is outside `[0, x.len()]` or not finite.
///
/// ```
/// use hotspot_qp::project_capped_simplex;
/// let p = project_capped_simplex(&[10.0, 0.0, -10.0], 1.0);
/// assert!((p[0] - 1.0).abs() < 1e-9);
/// assert!(p[2].abs() < 1e-9);
/// ```
pub fn project_capped_simplex(x: &[f64], k: f64) -> Vec<f64> {
    let n = x.len();
    assert!(
        k.is_finite() && (0.0..=n as f64).contains(&k),
        "budget {k} outside [0, {n}]"
    );
    if n == 0 {
        return Vec::new();
    }
    let sum_at = |tau: f64| -> f64 { x.iter().map(|&v| (v - tau).clamp(0.0, 1.0)).sum() };
    // Bracket τ: sum_at is non-increasing in τ.
    let max_x = x.iter().copied().fold(f64::MIN, f64::max);
    let min_x = x.iter().copied().fold(f64::MAX, f64::min);
    let mut lo = min_x - 1.5; // sum_at(lo) = n ≥ k
    let mut hi = max_x + 0.5; // sum_at(hi) = 0 ≤ k
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if sum_at(mid) > k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let tau = 0.5 * (lo + hi);
    x.iter().map(|&v| (v - tau).clamp(0.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_feasible(p: &[f64], k: f64) {
        for &v in p {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "coordinate {v} out of box"
            );
        }
        let sum: f64 = p.iter().sum();
        assert!((sum - k).abs() < 1e-6, "sum {sum} != {k}");
    }

    #[test]
    fn already_feasible_is_fixed_point() {
        let x = [0.5, 0.25, 0.25];
        let p = project_capped_simplex(&x, 1.0);
        for (a, b) in x.iter().zip(&p) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn extreme_scores_saturate() {
        let p = project_capped_simplex(&[100.0, 50.0, -100.0, -100.0], 2.0);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p[1] - 1.0).abs() < 1e-9);
        assert!(p[2].abs() < 1e-9);
    }

    #[test]
    fn budget_zero_gives_zeros() {
        let p = project_capped_simplex(&[3.0, 2.0], 0.0);
        assert!(p.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn budget_n_gives_ones() {
        let p = project_capped_simplex(&[-3.0, -2.0], 2.0);
        assert!(p.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn empty_input() {
        assert!(project_capped_simplex(&[], 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_excess_budget() {
        let _ = project_capped_simplex(&[0.0], 2.0);
    }

    proptest! {
        #[test]
        fn prop_projection_is_feasible(
            x in proptest::collection::vec(-20.0f64..20.0, 1..30),
            frac in 0.0f64..1.0,
        ) {
            let k = (frac * x.len() as f64 * 100.0).round() / 100.0;
            let k = k.min(x.len() as f64);
            let p = project_capped_simplex(&x, k);
            assert_feasible(&p, k);
        }

        #[test]
        fn prop_projection_is_closest_among_perturbations(
            x in proptest::collection::vec(-5.0f64..5.0, 2..10),
        ) {
            // The projection must beat simple feasible alternatives.
            let k = (x.len() / 2) as f64;
            let p = project_capped_simplex(&x, k);
            let d_proj: f64 = x.iter().zip(&p).map(|(a, b)| (a - b).powi(2)).sum();
            // Uniform feasible point.
            let uniform = vec![k / x.len() as f64; x.len()];
            let d_uniform: f64 = x.iter().zip(&uniform).map(|(a, b)| (a - b).powi(2)).sum();
            prop_assert!(d_proj <= d_uniform + 1e-6);
        }

        #[test]
        fn prop_order_preserved(x in proptest::collection::vec(-5.0f64..5.0, 2..12)) {
            // Projection by a common shift preserves the coordinate order.
            let k = 1.0f64.min(x.len() as f64);
            let p = project_capped_simplex(&x, k);
            for i in 0..x.len() {
                for j in 0..x.len() {
                    if x[i] > x[j] {
                        prop_assert!(p[i] + 1e-9 >= p[j]);
                    }
                }
            }
        }
    }
}
