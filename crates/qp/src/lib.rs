//! Box- and sum-constrained quadratic programming by projected gradient.
//!
//! The batch-sampling baseline of Yang et al. (TCAD 2020, reference \[14\] of
//! the DAC 2021 paper) selects a batch by relaxing a binary selection vector
//! to the *capped simplex*
//!
//! ```text
//!   { s ∈ ℝⁿ : 0 ≤ sᵢ ≤ 1, Σ sᵢ = k }
//! ```
//!
//! and solving `min ½ sᵀQs + cᵀs` over it. This crate implements exactly
//! that: [`project_capped_simplex`] (Euclidean projection by bisection on
//! the shift multiplier) and [`QpSolver`] (projected gradient descent with
//! a spectral-norm-bounded step). The paper's *own* diversity metric avoids
//! this machinery — which is the point of its runtime comparison (Fig. 3b) —
//! so this crate exists to reproduce the baseline's cost and behaviour.
//!
//! # Example
//!
//! ```
//! use hotspot_qp::{QpProblem, QpSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Pick k=1 of two items; the second has lower linear cost.
//! let problem = QpProblem::new(vec![0.0, 0.0, 0.0, 0.0], vec![0.0, -1.0], 1.0)?;
//! let solution = QpSolver::default().solve(&problem);
//! assert!(solution.values[1] > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod problem;
mod projection;
mod solver;

pub use problem::{QpError, QpProblem};
pub use projection::project_capped_simplex;
pub use solver::{QpSolution, QpSolver};
