use std::fmt;

/// Error type for quadratic-program construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QpError {
    /// The quadratic matrix is not `n × n` for the cost vector length `n`.
    BadShape {
        /// Quadratic buffer length.
        q_len: usize,
        /// Cost vector length.
        c_len: usize,
    },
    /// The budget `k` is outside `[0, n]`.
    BadBudget {
        /// Requested budget.
        k: f64,
        /// Variable count.
        n: usize,
    },
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::BadShape { q_len, c_len } => write!(
                f,
                "quadratic buffer of {q_len} entries is not square for {c_len} variables"
            ),
            QpError::BadBudget { k, n } => {
                write!(f, "budget {k} outside the feasible range [0, {n}]")
            }
        }
    }
}

impl std::error::Error for QpError {}

/// The capped-simplex quadratic program
/// `min ½ sᵀQs + cᵀs  s.t.  0 ≤ s ≤ 1, Σs = k`.
#[derive(Debug, Clone, PartialEq)]
pub struct QpProblem {
    q: Vec<f64>, // n × n row-major
    c: Vec<f64>,
    k: f64,
}

impl QpProblem {
    /// Creates a problem from a row-major `n × n` quadratic term, a cost
    /// vector, and the selection budget `k`.
    ///
    /// # Errors
    ///
    /// Returns [`QpError::BadShape`] when `q.len() != c.len()²` and
    /// [`QpError::BadBudget`] when `k ∉ [0, n]` or is not finite.
    pub fn new(q: Vec<f64>, c: Vec<f64>, k: f64) -> Result<Self, QpError> {
        let n = c.len();
        if q.len() != n * n {
            return Err(QpError::BadShape {
                q_len: q.len(),
                c_len: n,
            });
        }
        if !k.is_finite() || k < 0.0 || k > n as f64 {
            return Err(QpError::BadBudget { k, n });
        }
        Ok(QpProblem { q, c, k })
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// Whether the problem has no variables.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// The selection budget.
    pub fn budget(&self) -> f64 {
        self.k
    }

    /// The quadratic matrix, row-major.
    pub fn quadratic(&self) -> &[f64] {
        &self.q
    }

    /// The linear cost vector.
    pub fn linear(&self) -> &[f64] {
        &self.c
    }

    /// Objective value `½ sᵀQs + cᵀs`.
    ///
    /// # Panics
    ///
    /// Panics when `s.len()` differs from the variable count.
    pub fn objective(&self, s: &[f64]) -> f64 {
        let n = self.len();
        assert_eq!(s.len(), n, "solution length mismatch");
        let mut value = 0.0;
        for i in 0..n {
            value += self.c[i] * s[i];
            let row = &self.q[i * n..(i + 1) * n];
            let mut qs = 0.0;
            for (qij, &sj) in row.iter().zip(s) {
                qs += qij * sj;
            }
            value += 0.5 * s[i] * qs;
        }
        value
    }

    /// Gradient `Qs + c` written into `grad`.
    ///
    /// Uses `(Q + Qᵀ)/2` implicitly by assuming `Q` symmetric, which the
    /// diversity matrices in this workspace always are.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn gradient(&self, s: &[f64], grad: &mut [f64]) {
        let n = self.len();
        assert_eq!(s.len(), n, "solution length mismatch");
        assert_eq!(grad.len(), n, "gradient length mismatch");
        for (i, g) in grad.iter_mut().enumerate() {
            let row = &self.q[i * n..(i + 1) * n];
            let mut acc = self.c[i];
            for (qij, &sj) in row.iter().zip(s) {
                acc += qij * sj;
            }
            *g = acc;
        }
    }

    /// A cheap upper bound on the spectral norm of `Q` (max row 1-norm),
    /// used to pick a stable projected-gradient step size.
    pub fn lipschitz_bound(&self) -> f64 {
        let n = self.len();
        (0..n)
            .map(|i| {
                self.q[i * n..(i + 1) * n]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            QpProblem::new(vec![0.0; 3], vec![0.0; 2], 1.0),
            Err(QpError::BadShape { .. })
        ));
        assert!(matches!(
            QpProblem::new(vec![0.0; 4], vec![0.0; 2], 5.0),
            Err(QpError::BadBudget { .. })
        ));
        assert!(matches!(
            QpProblem::new(vec![0.0; 4], vec![0.0; 2], f64::NAN),
            Err(QpError::BadBudget { .. })
        ));
    }

    #[test]
    fn objective_matches_manual() {
        // Q = [[2, 0], [0, 4]], c = [1, -1], s = [1, 0.5].
        let p = QpProblem::new(vec![2.0, 0.0, 0.0, 4.0], vec![1.0, -1.0], 1.5).unwrap();
        let value = p.objective(&[1.0, 0.5]);
        // ½(2·1 + 4·0.25) + (1 - 0.5) = 1.5 + 0.5.
        assert!((value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = QpProblem::new(vec![2.0, 1.0, 1.0, 4.0], vec![0.5, -0.25], 1.0).unwrap();
        let s = [0.3, 0.7];
        let mut grad = [0.0; 2];
        p.gradient(&s, &mut grad);
        let eps = 1e-6;
        for i in 0..2 {
            let mut sp = s;
            sp[i] += eps;
            let mut sm = s;
            sm[i] -= eps;
            let numeric = (p.objective(&sp) - p.objective(&sm)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-5, "dim {i}");
        }
    }

    #[test]
    fn lipschitz_bound_dominates_rows() {
        let p = QpProblem::new(vec![1.0, -2.0, -2.0, 0.5], vec![0.0, 0.0], 1.0).unwrap();
        assert_eq!(p.lipschitz_bound(), 3.0);
    }
}
