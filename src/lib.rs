//! # lithohd — active entropy sampling for lithography hotspot detection
//!
//! Façade crate of the `lithohd` workspace, a from-scratch Rust reproduction
//! of *"Low-Cost Lithography Hotspot Detection with Active Entropy Sampling
//! and Model Calibration"* (DAC 2021). It re-exports every subsystem so that
//! applications — and the `examples/` in this repository — can depend on one
//! crate:
//!
//! * [`geom`] — integer Manhattan geometry and clip rasters,
//! * [`layout`] — synthetic ICCAD12/16-like benchmark generation,
//! * [`litho`] — aerial-image lithography simulation and the metered oracle,
//! * [`features`] — block-DCT and density feature extraction,
//! * [`nn`] — the minimal neural-network library (dense/conv/Adam),
//! * [`gmm`] — Gaussian mixture models for the posterior-driven query pool,
//! * [`qp`] — the quadratic-program solver behind the QP baseline,
//! * [`calibration`] — temperature scaling, ECE, reliability diagrams,
//! * [`active`] — the paper's contribution: calibrated uncertainty,
//!   min-distance diversity, entropy weighting, and the sampling framework,
//! * [`baselines`] — pattern matching, TS-only and QP batch samplers.
//!
//! # Quickstart
//!
//! ```
//! use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small ICCAD16-2-like benchmark and inspect its statistics.
//! let spec = BenchmarkSpec::iccad16_2().scaled(0.25);
//! let bench = GeneratedBenchmark::generate(&spec, 7)?;
//! assert!(bench.hotspot_count() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for the full sampling loop.

#![forbid(unsafe_code)]

pub use hotspot_active as active;
pub use hotspot_baselines as baselines;
pub use hotspot_calibration as calibration;
pub use hotspot_features as features;
pub use hotspot_geom as geom;
pub use hotspot_gmm as gmm;
pub use hotspot_layout as layout;
pub use hotspot_litho as litho;
pub use hotspot_nn as nn;
pub use hotspot_qp as qp;
