//! Exchange-format walkthrough: export generated clips as plain-text clip
//! files and PGM images, re-import one, and verify the lithography label
//! survives the round trip.
//!
//! ```text
//! cargo run --release --example export_clips
//! ```
//!
//! Outputs land in `target/clips/`.

use lithohd::layout::{write_pgm, BenchmarkSpec, ClipFile, GeneratedBenchmark};
use lithohd::litho::LithoSimulator;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/clips");
    std::fs::create_dir_all(out)?;

    let spec = BenchmarkSpec::iccad16_2().scaled(0.25);
    let bench = GeneratedBenchmark::generate(&spec, 8)?;
    let sim = LithoSimulator::new(bench.spec().tech.litho_config());

    // Export the first hotspot and the first non-hotspot.
    let hotspot = bench
        .labels()
        .iter()
        .position(|l| l.is_hotspot())
        .expect("benchmark has hotspots");
    let clean = bench
        .labels()
        .iter()
        .position(|l| !l.is_hotspot())
        .expect("benchmark has non-hotspots");

    for (tag, index) in [("hotspot", hotspot), ("clean", clean)] {
        let raster = bench.clip_raster(index);

        // PGM image of the mask and of the simulated aerial intensity.
        write_pgm(&raster, File::create(out.join(format!("{tag}_mask.pgm")))?)?;
        let aerial = sim.aerial_image(&raster);
        let mut intensity = raster.clone();
        intensity.pixels_mut().copy_from_slice(aerial.intensity());
        write_pgm(
            &intensity,
            File::create(out.join(format!("{tag}_aerial.pgm")))?,
        )?;
        println!(
            "clip {index} ({tag}): label {}, wrote {tag}_mask.pgm / {tag}_aerial.pgm",
            bench.labels()[index]
        );
    }

    // Round-trip the hotspot clip through the text format. The generator
    // works in rasters, so reconstruct a rect list from the raster rows —
    // for hand-written clips you would author the rects directly.
    let raster = bench.clip_raster(hotspot);
    let pitch = bench.spec().tech.litho_config().pitch;
    let mut rects = Vec::new();
    for row in 0..raster.height() {
        let mut col = 0;
        while col < raster.width() {
            if raster.at(row, col) >= 0.5 {
                let start = col;
                while col < raster.width() && raster.at(row, col) >= 0.5 {
                    col += 1;
                }
                rects.push(lithohd::geom::Rect::new(
                    start as i64 * pitch,
                    row as i64 * pitch,
                    col as i64 * pitch,
                    (row as i64 + 1) * pitch,
                )?);
            } else {
                col += 1;
            }
        }
    }
    let clip_file = ClipFile {
        width: bench.spec().tech.clip_edge(),
        height: bench.spec().tech.clip_edge(),
        core_edge: bench.spec().tech.core_edge(),
        rects,
    };
    let path = out.join("hotspot.clip");
    clip_file.write(File::create(&path)?)?;

    let reloaded = ClipFile::read(BufReader::new(File::open(&path)?))?;
    let label = sim.label(&reloaded.to_raster(pitch)?, reloaded.core());
    println!(
        "round trip through {}: label {} ({} rects)",
        path.display(),
        label,
        reloaded.rects.len()
    );
    assert_eq!(label, bench.labels()[hotspot]);
    Ok(())
}
