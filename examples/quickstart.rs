//! Quickstart: generate a benchmark, run the paper's active entropy
//! sampler, and print the PSHD metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small ICCAD16-2-like benchmark: ~14 hotspots among 256 clips,
    //    generated and ground-truth-labelled by the built-in lithography
    //    simulator.
    let spec = BenchmarkSpec::iccad16_2().scaled(0.25);
    println!(
        "generating {}: {} hotspots / {} non-hotspots…",
        spec.name, spec.hotspots, spec.non_hotspots
    );
    let bench = GeneratedBenchmark::generate(&spec, 42)?;

    // 2. Configure the sampling framework. `for_benchmark` scales the
    //    splits, query pool and batch size to the population.
    let config = SamplingConfig::for_benchmark(bench.len());
    println!(
        "active loop: |L0| = {}, |V| = {}, k = {} over {} iterations",
        config.initial_train, config.validation, config.batch, config.iterations
    );
    let framework = SamplingFramework::new(config);

    // 3. Run Algorithm 2 with the entropy-based batch selector (Algorithm 1).
    let outcome = framework.run(&bench, &mut EntropySelector::new(), 7)?;

    // 4. Report the paper's metrics.
    let m = &outcome.metrics;
    println!();
    println!("detection accuracy : {:.2}%", m.accuracy * 100.0);
    println!(
        "litho-clips        : {} (train {} + val {} + false alarms {})",
        m.litho, m.train_size, m.validation_size, m.false_alarms
    );
    println!(
        "hotspots found     : {} in training, {} in validation, {} predicted",
        m.train_hotspots, m.validation_hotspots, m.hits
    );
    println!("final temperature  : {:.3}", outcome.final_temperature);
    println!(
        "validation ECE     : {:.4} -> {:.4}",
        outcome.ece_before, outcome.ece_after
    );
    println!();
    println!("per-iteration telemetry:");
    for stat in &outcome.history {
        println!(
            "  iter {:>2}: T = {:.2}, batch hotspots = {:>2}, |L| = {:>4}, loss = {:.4}{}",
            stat.iteration,
            stat.temperature,
            stat.batch_hotspots,
            stat.labeled_size,
            stat.train_loss,
            stat.weights
                .map(|(w1, w2)| format!(", weights = ({w1:.2}, {w2:.2})"))
                .unwrap_or_default()
        );
    }
    Ok(())
}
