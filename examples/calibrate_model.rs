//! Model calibration walkthrough (the Fig. 2 effect): train a hotspot
//! classifier, show how over-confident its raw softmax is, then fix it with
//! temperature scaling and watch the expected calibration error drop.
//!
//! ```text
//! cargo run --release --example calibrate_model
//! ```

use lithohd::active::HotspotModel;
use lithohd::calibration::{ReliabilityDiagram, RocCurve, Temperature};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark};
use lithohd::nn::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::iccad16_3().scaled(0.4);
    println!("generating {} ({} clips)…", spec.name, spec.total());
    let bench = GeneratedBenchmark::generate(&spec, 3)?;

    // Standardised features; train / validation / test split.
    let dct = bench.dct_features();
    let (mean, std) = dct.column_stats();
    let standardized = dct.standardized(&mean, &std);
    let x = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());
    let y: Vec<usize> = bench.labels().iter().map(|l| l.class_index()).collect();
    let train: Vec<usize> = (0..bench.len()).filter(|i| i % 4 == 0).collect();
    let val: Vec<usize> = (0..bench.len()).filter(|i| i % 4 == 1).collect();
    let test: Vec<usize> = (0..bench.len()).filter(|i| i % 4 > 1).collect();

    let mut model = HotspotModel::new(x.cols(), 1, 1.0, 1e-3, 32);
    let train_labels: Vec<usize> = train.iter().map(|&i| y[i]).collect();
    model.train(&x.gather_rows(&train), &train_labels, 60, 0)?;

    // Fit T on the validation set.
    let (val_logits, _) = model.predict(&x.gather_rows(&val));
    let val_labels: Vec<usize> = val.iter().map(|&i| y[i]).collect();
    let temperature = Temperature::fit(val_logits.as_slice(), 2, &val_labels)?;
    println!("fitted {temperature}");

    // Reliability on held-out clips, before and after.
    let (test_logits, _) = model.predict(&x.gather_rows(&test));
    for (title, t) in [
        ("raw softmax (T = 1)", Temperature::identity()),
        ("calibrated", temperature),
    ] {
        let probabilities = t.probabilities_batch(test_logits.as_slice(), 2);
        let mut confidences = Vec::new();
        let mut correct = Vec::new();
        for (row, &clip) in test.iter().enumerate() {
            let p = &probabilities[row * 2..row * 2 + 2];
            let pred = (p[1] > p[0]) as usize;
            confidences.push(p[pred] as f64);
            correct.push(pred == y[clip]);
        }
        let diagram = ReliabilityDiagram::from_predictions(&confidences, &correct, 10);
        println!();
        println!("--- {title} ---");
        println!("{diagram}");
    }

    // Threshold-swept quality of the detector itself (temperature scaling
    // preserves the ranking, so the AUC is calibration-invariant).
    let probabilities = temperature.probabilities_batch(test_logits.as_slice(), 2);
    let hotspot_scores: Vec<f32> = (0..test.len())
        .map(|row| probabilities[row * 2 + 1])
        .collect();
    let truth: Vec<bool> = test.iter().map(|&i| y[i] == 1).collect();
    let roc = RocCurve::from_scores(&hotspot_scores, &truth);
    println!();
    println!("detector AUC on held-out clips: {:.4}", roc.auc());
    let operating = roc.at_threshold(0.4);
    println!(
        "operating point at the paper's h = 0.4: TPR {:.3}, FPR {:.3}",
        operating.tpr, operating.fpr
    );
    Ok(())
}
