//! Fault tolerance: run the sampler against a lithography oracle whose
//! simulation jobs fail 10% of the time, behind seeded retry/backoff.
//!
//! The fault schedule is deterministic in the injector's seed, the retry
//! layer sleeps on a virtual clock (the example finishes instantly), and
//! the run degrades gracefully instead of dying: a label that never
//! arrives returns its clip to the unlabeled pool.
//!
//! ```text
//! cargo run --release --example faulty_oracle
//! ```

use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark};
use lithohd::litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The same small ICCAD16-2-like benchmark as the quickstart.
    let spec = BenchmarkSpec::iccad16_2().scaled(0.25);
    println!(
        "generating {}: {} hotspots / {} non-hotspots…",
        spec.name, spec.hotspots, spec.non_hotspots
    );
    let bench = GeneratedBenchmark::generate(&spec, 42)?;

    // 2. Wrap the benchmark's metered oracle in a deterministic fault
    //    injector (10% of simulation jobs fail transiently) and a bounded
    //    exponential-backoff retry layer. Failed jobs bill nothing; only
    //    delivered labels count toward Litho#.
    let rates = FaultRates::transient_only(0.10);
    let flaky = FaultyOracle::new(bench.oracle(), rates, 2024);
    let mut oracle = RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new());

    // 3. Run Algorithm 2 through the degradation-aware entry point.
    let config = SamplingConfig::for_benchmark(bench.len());
    let framework = SamplingFramework::new(config);
    let outcome = framework.run_with_oracle(&bench, &mut EntropySelector::new(), 7, &mut oracle)?;

    // 4. Report what the fault-tolerance layer absorbed.
    let m = &outcome.metrics;
    println!();
    println!("detection accuracy : {:.2}%", m.accuracy * 100.0);
    println!(
        "litho-clips        : {} (train {} + val {} + false alarms {} + extra {})",
        m.litho, m.train_size, m.validation_size, m.false_alarms, m.extra_simulations
    );
    let f = &outcome.fault_stats;
    println!("faults injected    : {}", oracle.inner().injected().total());
    println!(
        "retries absorbed   : {} (backoff slept {:?} of virtual time)",
        f.oracle_retries,
        oracle.clock().total_slept()
    );
    println!("labels lost        : {}", f.label_failures);
    println!("degraded           : {}", outcome.degraded);
    println!(
        "note: every billable simulation is metered — {} unique = train {} + val {} + extra {}",
        outcome.oracle_stats.unique, m.train_size, m.validation_size, m.extra_simulations
    );
    Ok(())
}
