//! Using the substrate crates directly: build a layout clip by hand, run
//! the lithography simulator on it, and inspect the aerial image, the
//! printed contour, and any defects.
//!
//! ```text
//! cargo run --release --example custom_layout
//! ```

use lithohd::geom::{ClipWindow, Raster, Rect};
use lithohd::litho::{Bitmap, LithoConfig, LithoSimulator, ResistModel};

/// Renders a bitmap as ASCII art (row 0 at the bottom, as in layout space).
fn render(bitmap: &Bitmap, step: usize) -> String {
    let mut out = String::new();
    for row in (0..bitmap.height()).rev().step_by(step) {
        for col in (0..bitmap.width()).step_by(step) {
            out.push(if bitmap.at(row, col) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LithoConfig::duv_28nm();
    let sim = LithoSimulator::new(config.clone());

    // A 1200 nm clip with a 600 nm core.
    let clip = ClipWindow::new(Rect::new(0, 0, 1200, 1200)?, 600)?;
    let mut mask = Raster::zeros_for(&clip, config.pitch)?;

    // Three comfortable wires… and one 30 nm wire through the core that has
    // no chance of printing.
    mask.fill_rect(&Rect::new(0, 150, 1200, 250)?, 1.0);
    mask.fill_rect(&Rect::new(0, 420, 1200, 520)?, 1.0);
    mask.fill_rect(&Rect::new(0, 920, 1200, 1020)?, 1.0);
    mask.fill_rect(&Rect::new(0, 640, 1200, 670)?, 1.0);

    // Inspect the optics.
    let aerial = sim.aerial_image(&mask);
    println!(
        "aerial image: {}x{} px, peak intensity {:.3}, max gradient {:.3}",
        aerial.width(),
        aerial.height(),
        aerial.peak(),
        aerial.max_gradient()
    );

    // Develop the resist and compare design intent vs printed contour.
    let resist = ResistModel::new(config.resist_threshold);
    let printed = resist.develop(&aerial);
    let target = Bitmap::from_raster(&mask, 0.5);
    println!();
    println!("design intent (left) vs printed resist (right):");
    let left = render(&target, 4);
    let right = render(&printed, 4);
    for (a, b) in left.lines().zip(right.lines()) {
        println!("{a}   {b}");
    }

    // Full defect analysis against the clip core.
    let report = sim.analyze(&mask, clip.core());
    println!("label: {}", report.label());
    for defect in report.defects() {
        println!("  defect: {defect}");
    }
    assert!(report.label().is_hotspot(), "the 30 nm wire must pinch");
    Ok(())
}
