//! Head-to-head comparison of the four batch-selection strategies on one
//! benchmark: the paper's entropy sampler, the TS (calibrated-uncertainty-
//! only) baseline, the QP selector of [14], and uniform random sampling.
//!
//! ```text
//! cargo run --release --example compare_samplers
//! ```

use lithohd::active::{
    BatchSelector, EntropySelector, RandomSelector, SamplingConfig, SamplingFramework,
    UncertaintySelector,
};
use lithohd::baselines::{BadgeSelector, QpSelector};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::iccad16_4().scaled(0.5);
    println!("generating {} ({} clips)…", spec.name, spec.total());
    let bench = GeneratedBenchmark::generate(&spec, 5)?;
    let framework = SamplingFramework::new(SamplingConfig::for_benchmark(bench.len()));

    let selectors: Vec<(&str, Box<dyn BatchSelector>)> = vec![
        ("Ours (entropy)", Box::new(EntropySelector::new())),
        ("TS", Box::new(UncertaintySelector::new())),
        ("QP [14]", Box::new(QpSelector::new())),
        ("BADGE [13]", Box::new(BadgeSelector::new())),
        ("Random", Box::new(RandomSelector::new())),
    ];

    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>6} {:>6} {:>10}",
        "method", "Acc(%)", "Litho#", "hits", "FA", "PSHD (s)"
    );
    for (name, mut selector) in selectors {
        // Average over three seeds; CNN-style models are initialisation-
        // sensitive, which is exactly the stability point of the paper's
        // Fig. 4 study.
        let (mut acc, mut litho, mut hits, mut fa, mut secs) = (0.0, 0.0, 0.0, 0.0, 0.0);
        const SEEDS: [u64; 3] = [1, 2, 3];
        for seed in SEEDS {
            let outcome = framework.run(&bench, selector.as_mut(), seed)?;
            acc += outcome.metrics.accuracy;
            litho += outcome.metrics.litho as f64;
            hits += outcome.metrics.hits as f64;
            fa += outcome.metrics.false_alarms as f64;
            secs += outcome.elapsed.as_secs_f64();
        }
        let n = SEEDS.len() as f64;
        println!(
            "{:<16} {:>8.2} {:>8.1} {:>6.1} {:>6.1} {:>10.2}",
            name,
            acc / n * 100.0,
            litho / n,
            hits / n,
            fa / n,
            secs / n
        );
    }
    Ok(())
}
