//! Process-window analysis (extension beyond the paper): label clips not
//! just at the nominal imaging condition but across a focus-exposure window,
//! and find the geometry that is *process-window-limited* — printable at
//! nominal, failing under an excursion.
//!
//! ```text
//! cargo run --release --example process_window
//! ```

use lithohd::geom::{Raster, Rect};
use lithohd::litho::{analyze_process_window, Label, LithoConfig, LithoSimulator, ProcessCorner};

fn track_clip(config: &LithoConfig, width: i64) -> (Raster, Rect) {
    let mut raster = Raster::zeros(Rect::new(0, 0, 1200, 1200).expect("ordered"), config.pitch)
        .expect("raster fits");
    let y = 600 - width / 2;
    raster.fill_rect(&Rect::new(0, y, 1200, y + width).expect("ordered"), 1.0);
    (raster, Rect::new(300, 300, 900, 900).expect("ordered"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nominal = LithoConfig::duv_28nm();
    let nominal_sim = LithoSimulator::new(nominal.clone());
    let window = ProcessCorner::standard_window();

    println!("focus-exposure window: {} corners", window.len());
    for corner in &window {
        println!(
            "  {:<9} sigma x{:.2}, threshold x{:.2}",
            corner.name, corner.sigma_scale, corner.threshold_scale
        );
    }
    println!();
    println!(
        "{:>10} {:>12} {:>16} failing corners",
        "width(nm)", "nominal", "process window"
    );

    let mut limited = Vec::new();
    for width in (30..=80).step_by(4) {
        let (mask, core) = track_clip(&nominal, width);
        let at_nominal = nominal_sim.label(&mask, core);
        let report = analyze_process_window(&nominal, &window, &mask, core);
        println!(
            "{:>10} {:>12} {:>16} {}",
            width,
            at_nominal,
            report.label(),
            report.failing_corners().join(", ")
        );
        if at_nominal == Label::NonHotspot && report.label() == Label::Hotspot {
            limited.push(width);
        }
    }

    println!();
    println!("process-window-limited widths (print at nominal, fail an excursion): {limited:?}");
    assert!(
        !limited.is_empty(),
        "expected some width to be process-window-limited"
    );
    Ok(())
}
