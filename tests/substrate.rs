//! Physics-level integration tests: the lithography model and the benchmark
//! generator must agree about which geometry prints, across both technology
//! presets — the contract everything above them depends on.

use lithohd::features::{run_length_histogram, FeatureExtractor, DEFAULT_RUN_BINS};
use lithohd::geom::{ClipWindow, Raster, Rect};
use lithohd::layout::Tech;
use lithohd::litho::{DefectKind, Label, LithoConfig, LithoSimulator};

fn clip_for(tech: Tech) -> (ClipWindow, LithoConfig) {
    let config = tech.litho_config();
    let edge = tech.clip_edge();
    let clip = ClipWindow::new(
        Rect::new(0, 0, edge, edge).expect("edge > 0"),
        tech.core_edge(),
    )
    .expect("core fits");
    (clip, config)
}

fn track(raster: &mut Raster, edge: i64, y: i64, width: i64) {
    raster.fill_rect(&Rect::new(0, y, edge, y + width).expect("ordered"), 1.0);
}

#[test]
fn geometry_windows_match_litho_physics() {
    // The generator's safe/hot windows must be on the right side of the
    // printability cliff for both technology nodes.
    for tech in [Tech::Duv28, Tech::Euv7] {
        let (clip, config) = clip_for(tech);
        let sim = LithoSimulator::new(config.clone());
        let g = tech.geometry();
        let edge = tech.clip_edge();
        let mid = edge / 2;

        // Safe minimum width prints.
        let mut safe = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        track(&mut safe, edge, mid - g.safe_width.0 / 2, g.safe_width.0);
        assert_eq!(
            sim.label(&safe, clip.core()),
            Label::NonHotspot,
            "{tech:?}: safe width {} should print",
            g.safe_width.0
        );

        // Maximum hot width pinches.
        let mut hot = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        track(&mut hot, edge, mid - g.hot_width.1 / 2, g.hot_width.1);
        let report = sim.analyze(&hot, clip.core());
        assert_eq!(
            report.label(),
            Label::Hotspot,
            "{tech:?}: hot width {}",
            g.hot_width.1
        );
        assert!(report.defects().iter().any(|d| d.kind == DefectKind::Pinch));

        // Safe gap resolves; maximum hot gap bridges.
        let wide = g.safe_width.1;
        let mut spaced = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        track(&mut spaced, edge, mid - g.safe_gap_min - wide, wide);
        track(&mut spaced, edge, mid, wide);
        assert_eq!(
            sim.label(&spaced, clip.core()),
            Label::NonHotspot,
            "{tech:?}: safe gap {}",
            g.safe_gap_min
        );

        let mut bridged = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        track(&mut bridged, edge, mid - g.hot_gap.1 - wide, wide);
        track(&mut bridged, edge, mid, wide);
        let report = sim.analyze(&bridged, clip.core());
        assert_eq!(
            report.label(),
            Label::Hotspot,
            "{tech:?}: hot gap {}",
            g.hot_gap.1
        );
        assert!(report
            .defects()
            .iter()
            .any(|d| d.kind == DefectKind::Bridge));
    }
}

#[test]
fn features_see_the_defect_structures() {
    // A pinch wire and a safe wire must land in different run-length bins —
    // otherwise no classifier could work.
    let tech = Tech::Duv28;
    let (clip, config) = clip_for(tech);
    let g = tech.geometry();
    let edge = tech.clip_edge();
    let mid = edge / 2;

    let histogram_for = |width: i64| {
        let mut raster = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        track(&mut raster, edge, mid - width / 2, width);
        let core = raster.crop(&clip.core()).expect("core crop");
        run_length_histogram(&core, 0.5, &DEFAULT_RUN_BINS)
    };
    let hot = histogram_for(g.hot_width.0);
    let safe = histogram_for(g.safe_width.0);
    let distance: f32 = hot.iter().zip(&safe).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        distance > 0.5,
        "hot and safe widths are indistinguishable: {distance}"
    );
}

#[test]
fn extractor_dimension_is_stable_across_techs() {
    // All benchmarks share one classifier input dimension regardless of
    // node, because features are computed on the core crop.
    let extractor = FeatureExtractor::standard();
    for tech in [Tech::Duv28, Tech::Euv7] {
        let (clip, config) = clip_for(tech);
        let raster = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
        let core = raster.crop(&clip.core());
        // An all-empty core crop yields None; build from the full window.
        let crop = core.unwrap_or(raster);
        assert_eq!(extractor.extract(&crop).len(), 96);
    }
}

#[test]
fn aerial_intensity_is_monotone_in_mask_area() {
    let (clip, config) = clip_for(Tech::Duv28);
    let sim = LithoSimulator::new(config.clone());
    let mut narrow = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
    track(&mut narrow, 1200, 580, 40);
    let mut wide = Raster::zeros_for(&clip, config.pitch).expect("raster fits");
    track(&mut wide, 1200, 560, 80);
    assert!(sim.aerial_image(&wide).peak() > sim.aerial_image(&narrow).peak());
}
