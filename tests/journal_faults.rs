//! Integration test for the run journal under an injected-fault oracle: a
//! degraded run must journal its retry/giveup meters and `degraded` flag,
//! and the billable-call counter must account for every retry and quorum
//! vote — `litho.oracle.calls` equals the oracle's unique-simulation meter
//! plus the billed false alarms, exactly as in a fault-free run.
//!
//! Acceptance demo for the fault-tolerance layer: a seeded 20% transient +
//! 2% label-flip oracle behind retry/backoff and 3-vote quorum completes
//! without panicking, bit-identically for a fixed seed, and lands within
//! two accuracy points of the fault-free run at the same scale.
//!
//! Journal lines are decoded with the shared [`hotspot_bench::journal`]
//! parser — the same code path `lithohd-report` uses.
//!
//! This lives in its own test binary so the process-wide metrics registry is
//! not shared with unrelated framework runs.

use hotspot_bench::journal::Journal;
use hotspot_telemetry as telemetry;
use lithohd::active::{EntropySelector, RunOutcome, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use lithohd::litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
use std::sync::Arc;

fn bench_and_framework() -> (GeneratedBenchmark, SamplingFramework) {
    let spec = BenchmarkSpec {
        name: "journal-faults".to_owned(),
        tech: Tech::Euv7,
        hotspots: 24,
        non_hotspots: 226,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    };
    let bench = GeneratedBenchmark::generate(&spec, 11).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 4;
    config.initial_epochs = 40;
    config.update_epochs = 15;
    let framework = SamplingFramework::new(config);
    (bench, framework)
}

fn faulty_run(bench: &GeneratedBenchmark, framework: &SamplingFramework, seed: u64) -> RunOutcome {
    let rates = FaultRates {
        transient: 0.2,
        flip: 0.02,
        ..FaultRates::default()
    };
    let flaky = FaultyOracle::new(bench.oracle(), rates, 99);
    let mut oracle =
        RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new()).with_quorum(3);
    framework
        .run_with_oracle(bench, &mut EntropySelector::new(), seed, &mut oracle)
        .expect("degraded run completes")
}

#[test]
fn faulty_run_journals_fault_meters_and_exact_billing() {
    let path = std::env::temp_dir().join(format!(
        "lithohd-journal-faults-{}.jsonl",
        std::process::id()
    ));
    let sink = telemetry::JsonlSink::create(&path).expect("journal opens");
    telemetry::add_sink(Arc::new(sink));

    let (bench, framework) = bench_and_framework();

    // Fault-free reference first (its calls land in the same process-wide
    // counter; the per-run delta accounting below must still be exact).
    let clean = framework
        .run(&bench, &mut EntropySelector::new(), 3)
        .expect("fault-free run succeeds");

    let outcome = faulty_run(&bench, &framework, 3);
    let again = faulty_run(&bench, &framework, 3);

    telemetry::publish_snapshot();
    telemetry::flush();
    telemetry::clear_sinks();

    let journal = Journal::read(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();

    // Determinism: the same seed reproduces the same degraded run.
    assert_eq!(
        outcome.metrics, again.metrics,
        "faulty run must be bit-identical"
    );
    assert_eq!(outcome.sampled_indices, again.sampled_indices);
    assert_eq!(outcome.fault_stats, again.fault_stats);

    // Resilience: within two accuracy points of the fault-free run.
    assert!(
        (clean.metrics.accuracy - outcome.metrics.accuracy).abs() <= 0.02 + 1e-12,
        "fault-free acc {} vs faulty acc {}",
        clean.metrics.accuracy,
        outcome.metrics.accuracy
    );

    // The retry layer absorbed faults and the quorum voted.
    assert!(outcome.fault_stats.oracle_retries > 0);
    assert!(outcome.fault_stats.quorum_votes > 0);
    assert!(outcome.metrics.extra_simulations > 0);

    // Eq. 2 accounting: the oracle's unique-simulation meter covers the
    // labelled sets plus every billable quorum vote.
    assert_eq!(
        outcome.oracle_stats.unique,
        outcome.metrics.train_size
            + outcome.metrics.validation_size
            + outcome.metrics.extra_simulations
    );
    assert_eq!(
        outcome.metrics.litho,
        outcome.oracle_stats.unique + outcome.metrics.false_alarms
    );

    // The "run complete" event journals the fault meters and degraded flag.
    let run = journal
        .runs()
        .into_iter()
        .find(|run| run.run_id == outcome.run_id)
        .expect("journal has the faulty run's completion event");
    assert_eq!(
        run.oracle_retries,
        outcome.fault_stats.oracle_retries as u64
    );
    assert_eq!(
        run.oracle_giveups,
        outcome.fault_stats.oracle_giveups as u64
    );
    assert_eq!(run.quorum_votes, outcome.fault_stats.quorum_votes as u64);
    assert_eq!(run.degraded, outcome.degraded);

    // The snapshot's counters carry the fault-layer meters, and the billable
    // counter accounts for every run in this process exactly: each run's
    // unique simulations plus its billed false alarms.
    let snapshot = journal
        .final_snapshot()
        .expect("journal ends with a metrics snapshot");
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let expected_calls: u64 = [&clean, &outcome, &again]
        .iter()
        .map(|o| (o.oracle_stats.unique + o.metrics.false_alarms) as u64)
        .sum();
    assert_eq!(
        counter("litho.oracle.calls"),
        expected_calls,
        "billable-call counter must account for every retry and quorum vote"
    );
    assert_eq!(
        counter("litho.oracle.retries"),
        (outcome.fault_stats.oracle_retries + again.fault_stats.oracle_retries) as u64
    );
    assert!(counter("litho.oracle.quorum_votes") > 0);
    assert!(counter("litho.oracle.faults_injected") > 0);
}
