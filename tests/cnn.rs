//! End-to-end test of the convolutional path: the paper's detector is a
//! CNN, and while the default experiment model is the faster DCT-MLP (see
//! DESIGN.md §2), the `hotspot-nn` substrate must support training a real
//! CNN on real generated clips.

use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use lithohd::nn::{
    Adam, Conv2d, Dense, InitRng, Matrix, MaxPool2d, Relu, Sequential, SoftmaxCrossEntropy,
    TrainConfig, Trainer,
};

const EDGE: usize = 32;

/// Rasterises a clip's core to a flat EDGE × EDGE input row.
fn core_pixels(bench: &GeneratedBenchmark, index: usize) -> Vec<f32> {
    let raster = bench.clip_raster(index);
    let core = raster.crop(&bench.core()).expect("core crop exists");
    core.resampled(EDGE, EDGE).pixels().to_vec()
}

fn cnn(seed: u64) -> Sequential {
    let mut rng = InitRng::seeded(seed, 1.0);
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, 6, 3, EDGE, EDGE, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(6, EDGE, EDGE));
    net.push(Dense::new(6 * (EDGE / 2) * (EDGE / 2), 16, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(16, 2, &mut rng));
    net
}

#[test]
fn cnn_learns_hotspots_from_core_rasters() {
    let spec = BenchmarkSpec {
        name: "cnn".to_owned(),
        tech: Tech::Duv28,
        hotspots: 40,
        non_hotspots: 120,
        dup_rate: 0.1,
        // No near-miss family: this test checks the conv substrate, not the
        // active learner's hard-case behaviour.
        near_miss_rate: 0.0,
    };
    let bench = GeneratedBenchmark::generate(&spec, 13).expect("generation succeeds");

    let rows: Vec<Vec<f32>> = (0..bench.len()).map(|i| core_pixels(&bench, i)).collect();
    let x = Matrix::from_rows(&rows).expect("uniform rows");
    let y: Vec<usize> = bench.labels().iter().map(|l| l.class_index()).collect();

    // Train on two thirds, evaluate on the held-out third.
    let train: Vec<usize> = (0..bench.len()).filter(|i| i % 3 != 0).collect();
    let test: Vec<usize> = (0..bench.len()).filter(|i| i % 3 == 0).collect();
    let train_labels: Vec<usize> = train.iter().map(|&i| y[i]).collect();

    let mut net = cnn(5);
    let trainer = Trainer::new(TrainConfig {
        epochs: 60,
        batch_size: 16,
        shuffle_seed: 1,
        loss_target: Some(0.02),
    });
    let report = trainer
        .fit(
            &mut net,
            &x.gather_rows(&train),
            &train_labels,
            &SoftmaxCrossEntropy::weighted(vec![1.0, 2.0]),
            &mut Adam::new(3e-3),
        )
        .expect("training succeeds");
    assert!(
        report.final_loss() < report.epoch_losses[0],
        "loss did not decrease: {:?}",
        report.epoch_losses
    );

    let predictions = net.infer(&x.gather_rows(&test)).argmax_rows();
    let correct = predictions
        .iter()
        .zip(test.iter().map(|&i| y[i]))
        .filter(|&(&p, t)| p == t)
        .count();
    // The CNN sees raw geometry, so it should do clearly better than the
    // majority-class rate (75%) on held-out clips.
    assert!(
        correct * 100 >= test.len() * 80,
        "CNN held-out accuracy too low: {correct}/{}",
        test.len()
    );
}

#[test]
fn cnn_embedding_feeds_diversity_metric() {
    // The conv pipeline's penultimate features plug into the same diversity
    // metric as the MLP's.
    let net = cnn(7);
    let x = Matrix::zeros(5, EDGE * EDGE);
    let (logits, embedding) = net.infer_with_embedding(&x);
    assert_eq!(logits.cols(), 2);
    assert_eq!(embedding.cols(), 16);
    let scores = lithohd::active::diversity_scores(&embedding);
    assert_eq!(scores.len(), 5);
}
