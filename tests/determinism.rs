//! Cross-crate determinism: every stage of the pipeline must be exactly
//! reproducible from its seeds, which is what makes the experiment harness's
//! numbers citable.

use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::gmm::{GaussianMixture, GmmConfig};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};

fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "determinism".to_owned(),
        tech: Tech::Duv28,
        hotspots: 12,
        non_hotspots: 108,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    }
}

#[test]
fn generation_is_bit_exact_across_runs() {
    let a = GeneratedBenchmark::generate(&spec(), 31).expect("generation succeeds");
    let b = GeneratedBenchmark::generate(&spec(), 31).expect("generation succeeds");
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.recipes(), b.recipes());
    assert_eq!(a.dct_features().as_slice(), b.dct_features().as_slice());
    assert_eq!(a.signatures(), b.signatures());
}

#[test]
fn full_runs_are_bit_exact_across_invocations() {
    let bench = GeneratedBenchmark::generate(&spec(), 31).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 3;
    config.initial_epochs = 20;
    config.update_epochs = 8;
    let framework = SamplingFramework::new(config);
    let a = framework
        .run(&bench, &mut EntropySelector::new(), 77)
        .expect("run succeeds");
    let b = framework
        .run(&bench, &mut EntropySelector::new(), 77)
        .expect("run succeeds");
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.history, b.history);
    assert_eq!(a.sampled_indices, b.sampled_indices);
    assert_eq!(a.predicted_hotspots, b.predicted_hotspots);
    assert_eq!(a.final_temperature, b.final_temperature);
}

#[test]
fn different_seeds_change_outcomes() {
    let bench = GeneratedBenchmark::generate(&spec(), 31).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 3;
    config.initial_epochs = 20;
    config.update_epochs = 8;
    let framework = SamplingFramework::new(config);
    let a = framework
        .run(&bench, &mut EntropySelector::new(), 1)
        .expect("run succeeds");
    let b = framework
        .run(&bench, &mut EntropySelector::new(), 2)
        .expect("run succeeds");
    assert_ne!(
        a.sampled_indices, b.sampled_indices,
        "different seeds should explore differently"
    );
}

#[test]
fn gmm_scores_are_deterministic_over_generated_features() {
    let bench = GeneratedBenchmark::generate(&spec(), 31).expect("generation succeeds");
    let fit = |seed| {
        GaussianMixture::fit(
            bench.density_features().as_slice(),
            bench.density_features().dim(),
            &GmmConfig {
                components: 3,
                seed,
                ..GmmConfig::default()
            },
        )
        .expect("fit succeeds")
    };
    let a = fit(5);
    let b = fit(5);
    assert_eq!(
        a.score_samples(bench.density_features().as_slice()),
        b.score_samples(bench.density_features().as_slice())
    );
}
