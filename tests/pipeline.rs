//! End-to-end integration tests spanning the whole workspace: benchmark
//! generation → active sampling → detection metrics, and the relationships
//! between methods the paper's evaluation relies on.

use lithohd::active::{
    BatchSelector, EntropySelector, RandomSelector, SamplingConfig, SamplingFramework,
    UncertaintySelector,
};
use lithohd::baselines::{PatternMatcher, QpSelector};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};

fn test_benchmark(seed: u64) -> GeneratedBenchmark {
    let spec = BenchmarkSpec {
        name: "integration".to_owned(),
        tech: Tech::Euv7,
        hotspots: 24,
        non_hotspots: 226,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    };
    GeneratedBenchmark::generate(&spec, seed).expect("generation succeeds")
}

fn quick_config(total: usize) -> SamplingConfig {
    let mut config = SamplingConfig::for_benchmark(total);
    config.iterations = 5;
    config.initial_epochs = 40;
    config.update_epochs = 15;
    config
}

#[test]
fn active_pipeline_accounts_litho_exactly() {
    let bench = test_benchmark(1);
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let outcome = framework
        .run(&bench, &mut EntropySelector::new(), 9)
        .expect("run succeeds");
    let m = &outcome.metrics;
    // Eq. 2 and the oracle meter must agree.
    assert_eq!(m.litho, m.train_size + m.validation_size + m.false_alarms);
    assert_eq!(
        outcome.oracle_stats.unique,
        m.train_size + m.validation_size
    );
    // Eq. 1 is bounded by construction.
    assert!(m.accuracy <= 1.0);
    assert!(m.train_hotspots + m.validation_hotspots + m.hits <= m.total_hotspots);
    // Sampled indices are unique and within range.
    let mut sampled = outcome.sampled_indices.clone();
    sampled.sort_unstable();
    sampled.dedup();
    assert_eq!(sampled.len(), outcome.sampled_indices.len());
    assert!(sampled.iter().all(|&i| i < bench.len()));
}

#[test]
fn entropy_sampler_beats_random_on_average() {
    let bench = test_benchmark(2);
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let mut ours_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..3 {
        ours_total += framework
            .run(&bench, &mut EntropySelector::new(), seed)
            .expect("run succeeds")
            .metrics
            .accuracy;
        random_total += framework
            .run(&bench, &mut RandomSelector::new(), seed)
            .expect("run succeeds")
            .metrics
            .accuracy;
    }
    assert!(
        ours_total >= random_total,
        "entropy {ours_total} vs random {random_total}"
    );
}

#[test]
fn all_selectors_complete_on_the_same_benchmark() {
    let bench = test_benchmark(3);
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let selectors: Vec<Box<dyn BatchSelector>> = vec![
        Box::new(EntropySelector::new()),
        Box::new(UncertaintySelector::new()),
        Box::new(QpSelector::new()),
        Box::new(RandomSelector::new()),
    ];
    for mut selector in selectors {
        let outcome = framework
            .run(&bench, selector.as_mut(), 5)
            .expect("run succeeds");
        assert!(
            outcome.metrics.accuracy > 0.3,
            "{}: {}",
            outcome.selector,
            outcome.metrics.accuracy
        );
        assert!(!outcome.history.is_empty());
    }
}

#[test]
fn pattern_matching_exact_dominates_cost() {
    let bench = test_benchmark(4);
    let pm = PatternMatcher::exact().run(&bench);
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let active = framework
        .run(&bench, &mut EntropySelector::new(), 1)
        .expect("run succeeds");
    // Exact matching is perfectly accurate but pays far more litho than the
    // active sampler — the paper's core claim.
    assert_eq!(pm.accuracy, 1.0);
    assert!(
        pm.litho > active.metrics.litho,
        "PM litho {} vs active {}",
        pm.litho,
        active.metrics.litho
    );
}

#[test]
fn fuzzy_matching_trades_accuracy_for_cost() {
    let bench = test_benchmark(5);
    let exact = PatternMatcher::exact().run(&bench);
    let a95 = PatternMatcher::fuzzy_95().run(&bench);
    let a90 = PatternMatcher::fuzzy_90().run(&bench);
    assert!(a95.litho < exact.litho);
    assert!(a90.litho < a95.litho);
    assert!(a90.accuracy <= a95.accuracy + 1e-12);
}

#[test]
fn calibration_component_improves_reliability_on_average() {
    let bench = test_benchmark(6);
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let (mut before, mut after) = (0.0, 0.0);
    for seed in 0..3 {
        let outcome = framework
            .run(&bench, &mut EntropySelector::new(), seed)
            .expect("run succeeds");
        before += outcome.ece_before;
        after += outcome.ece_after;
    }
    assert!(
        after <= before + 0.05,
        "calibration should not hurt ECE: {before} -> {after}"
    );
}

#[test]
fn archived_benchmark_reproduces_the_run() {
    // Save → load → run must give bit-identical results to running on the
    // fresh benchmark (the cache layer cannot change science).
    let bench = test_benchmark(8);
    let mut buffer = Vec::new();
    bench.write_json(&mut buffer).expect("serialise benchmark");
    let loaded =
        lithohd::layout::GeneratedBenchmark::read_json(buffer.as_slice()).expect("load archive");
    let framework = SamplingFramework::new(quick_config(bench.len()));
    let fresh = framework
        .run(&bench, &mut EntropySelector::new(), 6)
        .expect("fresh run succeeds");
    let cached = framework
        .run(&loaded, &mut EntropySelector::new(), 6)
        .expect("cached run succeeds");
    assert_eq!(fresh.metrics, cached.metrics);
    assert_eq!(fresh.sampled_indices, cached.sampled_indices);
}

#[test]
fn regenerated_rasters_reproduce_oracle_labels() {
    // The litho simulator, generator and oracle must agree end to end.
    let bench = test_benchmark(7);
    let sim = lithohd::litho::LithoSimulator::new(bench.spec().tech.litho_config());
    for index in (0..bench.len()).step_by(17) {
        let raster = bench.clip_raster(index);
        assert_eq!(
            sim.label(&raster, bench.core()),
            bench.labels()[index],
            "clip {index}"
        );
    }
}
