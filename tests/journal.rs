//! Integration test for the telemetry run journal: a framework run with a
//! [`JsonlSink`] attached must journal exactly one iteration record per
//! [`RunOutcome::history`] entry, and the final metrics snapshot's
//! `litho.oracle.calls` counter must equal the reported litho-clip count
//! (Eq. 2: unique simulations plus false-alarm verification runs).
//!
//! This lives in its own test binary so the process-wide metrics registry is
//! not shared with unrelated framework runs.

use hotspot_telemetry as telemetry;
use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use serde_json::Value;
use std::sync::Arc;

#[test]
fn journal_records_every_iteration_and_the_litho_count() {
    let path = std::env::temp_dir().join(format!(
        "lithohd-journal-integration-{}.jsonl",
        std::process::id()
    ));
    let sink = telemetry::JsonlSink::create(&path).expect("journal opens");
    telemetry::add_sink(Arc::new(sink));

    let spec = BenchmarkSpec {
        name: "journal".to_owned(),
        tech: Tech::Euv7,
        hotspots: 24,
        non_hotspots: 226,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    };
    let bench = GeneratedBenchmark::generate(&spec, 11).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 4;
    config.initial_epochs = 40;
    config.update_epochs = 15;
    let framework = SamplingFramework::new(config);
    let outcome = framework
        .run(&bench, &mut EntropySelector::new(), 3)
        .expect("run succeeds");

    telemetry::publish_snapshot();
    telemetry::flush();
    telemetry::clear_sinks();

    let text = std::fs::read_to_string(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();

    let records: Vec<Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("journal line parses as JSON"))
        .collect();
    assert!(!records.is_empty(), "journal must not be empty");

    // One "iteration complete" event per history entry, tagged with this
    // run's id and carrying the paper's per-iteration quantities.
    let iteration_events: Vec<&Value> = records
        .iter()
        .filter(|r| {
            r.get("type").and_then(Value::as_str) == Some("event")
                && r.get("message").and_then(Value::as_str) == Some("iteration complete")
                && r.get("run_id").and_then(Value::as_u64) == Some(outcome.run_id)
        })
        .collect();
    assert_eq!(
        iteration_events.len(),
        outcome.history.len(),
        "one journal record per Algorithm-2 iteration"
    );
    for (event, stat) in iteration_events.iter().zip(&outcome.history) {
        assert_eq!(
            event.get("iteration").and_then(Value::as_u64),
            Some(stat.iteration as u64)
        );
        assert_eq!(
            event.get("temperature").and_then(Value::as_f64),
            Some(stat.temperature)
        );
        assert_eq!(
            event.get("labeled_size").and_then(Value::as_u64),
            Some(stat.labeled_size as u64)
        );
    }

    // The final snapshot's oracle counter equals the reported Litho#. This
    // binary runs exactly one framework run, so the process-wide counter is
    // entirely attributable to it.
    let snapshot = records
        .iter()
        .rev()
        .find(|r| r.get("type").and_then(Value::as_str) == Some("snapshot"))
        .expect("journal ends with a metrics snapshot");
    let litho_calls = snapshot
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("litho.oracle.calls"))
        .and_then(Value::as_u64)
        .expect("snapshot carries litho.oracle.calls");
    assert_eq!(
        litho_calls, outcome.metrics.litho as u64,
        "journal litho.oracle.calls must equal the reported litho-clip count"
    );
}
