//! Integration test for the telemetry run journal: a framework run with a
//! [`JsonlSink`] attached must journal exactly one iteration record per
//! [`RunOutcome::history`] entry, and the final metrics snapshot's
//! `litho.oracle.calls` counter must equal the reported litho-clip count
//! (Eq. 2: unique simulations plus false-alarm verification runs).
//!
//! Journal lines are decoded with the shared [`hotspot_bench::journal`]
//! parser — the same code path `lithohd-report` uses — so the test also
//! pins the parser to the framework's journal schema.
//!
//! This lives in its own test binary so the process-wide metrics registry is
//! not shared with unrelated framework runs.

use hotspot_bench::journal::Journal;
use hotspot_telemetry as telemetry;
use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use std::sync::Arc;

#[test]
fn journal_records_every_iteration_and_the_litho_count() {
    let path = std::env::temp_dir().join(format!(
        "lithohd-journal-integration-{}.jsonl",
        std::process::id()
    ));
    let sink = telemetry::JsonlSink::create(&path).expect("journal opens");
    telemetry::add_sink(Arc::new(sink));

    let spec = BenchmarkSpec {
        name: "journal".to_owned(),
        tech: Tech::Euv7,
        hotspots: 24,
        non_hotspots: 226,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    };
    let bench = GeneratedBenchmark::generate(&spec, 11).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 4;
    config.initial_epochs = 40;
    config.update_epochs = 15;
    let framework = SamplingFramework::new(config);
    let outcome = framework
        .run(&bench, &mut EntropySelector::new(), 3)
        .expect("run succeeds");

    telemetry::publish_snapshot();
    telemetry::flush();
    telemetry::clear_sinks();

    let journal = Journal::read(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();

    assert!(!journal.records.is_empty(), "journal must not be empty");
    assert_eq!(
        journal.skipped_lines, 0,
        "a cleanly closed journal has no unreadable lines"
    );

    // One "iteration complete" event per history entry, tagged with this
    // run's id and carrying the paper's per-iteration quantities.
    let iterations: Vec<_> = journal
        .iterations()
        .into_iter()
        .filter(|record| record.run_id == outcome.run_id)
        .collect();
    assert_eq!(
        iterations.len(),
        outcome.history.len(),
        "one journal record per Algorithm-2 iteration"
    );
    for (record, stat) in iterations.iter().zip(&outcome.history) {
        assert_eq!(record.iteration, stat.iteration as u64);
        assert_eq!(record.temperature, stat.temperature);
        assert_eq!(record.labeled_size, stat.labeled_size as u64);
    }

    // The typed run record mirrors the outcome's headline metrics.
    let run = journal
        .runs()
        .into_iter()
        .find(|run| run.run_id == outcome.run_id)
        .expect("journal has the run's completion event");
    assert_eq!(run.accuracy, outcome.metrics.accuracy);
    assert_eq!(run.litho, outcome.metrics.litho as u64);

    // The final snapshot's oracle counter equals the reported Litho#. This
    // binary runs exactly one framework run, so the process-wide counter is
    // entirely attributable to it.
    let snapshot = journal
        .final_snapshot()
        .expect("journal ends with a metrics snapshot");
    assert_eq!(
        snapshot.counters.get("litho.oracle.calls").copied(),
        Some(outcome.metrics.litho as u64),
        "journal litho.oracle.calls must equal the reported litho-clip count"
    );

    // The oracle's latency histogram saw every billable simulation and
    // carries quantile estimates for the exporter.
    let latency = snapshot
        .histograms
        .get("litho.oracle.seconds")
        .expect("snapshot carries the oracle latency histogram");
    assert!(latency.count >= outcome.oracle_stats.unique as u64);
    assert!(latency.p99.is_some());
}
