//! The workspace must stay lint-clean: `cargo test` runs the same check as
//! the CI `lint` job — every `lithohd-lint` finding is either fixed,
//! suppressed inline with a reason, or grandfathered in the committed
//! `lint-baseline.json`. New violations fail this test with the exact
//! file:line output `lithohd-lint check` would print.

use hotspot_lint::workspace::{discover, find_root};
use hotspot_lint::{check_on_disk, Baseline, NameRegistry};
use std::path::Path;

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let registry_path = root.join("crates/telemetry/src/names.rs");
    let registry_source =
        std::fs::read_to_string(&registry_path).expect("telemetry name registry exists");
    let registry = NameRegistry::parse("crates/telemetry/src/names.rs", &registry_source);

    let files = discover(&root).expect("workspace discovery");
    assert!(
        files.len() > 100,
        "suspiciously few files discovered: {}",
        files.len()
    );
    let report =
        check_on_disk(&root, &files, Some(&registry), false).expect("workspace scan succeeds");

    let baseline = Baseline::read(&root.join("lint-baseline.json"))
        .expect("committed lint-baseline.json is readable");
    let (new, _grandfathered) = baseline.partition(&report.findings);
    assert!(
        new.is_empty(),
        "{} new lint violation(s); fix, suppress with a reason, or re-baseline:\n{}",
        new.len(),
        new.iter()
            .map(|f| format!(
                "  {}:{}: [{}] {}: {}",
                f.path,
                f.line,
                f.severity.label(),
                f.rule,
                f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_inline_suppression_carries_a_reason() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let files = discover(&root).expect("workspace discovery");
    let report = check_on_disk(&root, &files, None, false).expect("workspace scan succeeds");
    for finding in &report.suppressed {
        let reason = finding.suppression_reason.as_deref().unwrap_or("");
        assert!(
            reason.len() >= 10,
            "suppression at {}:{} has no substantive reason",
            finding.path,
            finding.line
        );
    }
}
