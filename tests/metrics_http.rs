//! Acceptance test for the live metrics exporter: while a framework run is
//! resident in the process, a plain TCP `GET /metrics` against the real
//! HTTP server must return valid Prometheus text exposition containing the
//! `litho_oracle_calls` counter and at least one `_p99` quantile series,
//! `/healthz` must answer, and shutdown must release the port.
//!
//! This lives in its own test binary so the process-wide metrics registry is
//! not shared with unrelated framework runs.

use hotspot_telemetry as telemetry;
use lithohd::active::{EntropySelector, SamplingConfig, SamplingFramework};
use lithohd::layout::{BenchmarkSpec, GeneratedBenchmark, Tech};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Issues one HTTP/1.0 request and returns the raw response text.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics server accepts");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    response
}

#[test]
fn metrics_endpoint_serves_prometheus_text_during_a_run() {
    let mut server = telemetry::serve_metrics("127.0.0.1:0").expect("server binds");
    let addr = server.local_addr();

    let spec = BenchmarkSpec {
        name: "metrics-http".to_owned(),
        tech: Tech::Euv7,
        hotspots: 15,
        non_hotspots: 135,
        dup_rate: 0.2,
        near_miss_rate: 0.3,
    };
    let bench = GeneratedBenchmark::generate(&spec, 7).expect("generation succeeds");
    let mut config = SamplingConfig::for_benchmark(bench.len());
    config.iterations = 2;
    config.initial_epochs = 20;
    config.update_epochs = 5;
    let framework = SamplingFramework::new(config);
    let outcome = framework
        .run(&bench, &mut EntropySelector::new(), 5)
        .expect("run succeeds");

    let response = http_get(addr, "/metrics");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type, got: {head}"
    );

    // The billable-simulation counter is live and already reflects the run.
    let calls_line = body
        .lines()
        .find(|line| line.starts_with("litho_oracle_calls "))
        .expect("body carries litho_oracle_calls");
    let value: f64 = calls_line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .expect("counter value parses");
    assert!(
        value >= outcome.metrics.litho as f64,
        "litho_oracle_calls {value} must cover the run's Litho# {}",
        outcome.metrics.litho
    );

    // Tail-latency series: the oracle histogram exports a p99 estimate.
    assert!(
        body.lines()
            .any(|line| line.starts_with("litho_oracle_seconds_p99 ")),
        "body must carry a _p99 series"
    );
    // Every sample line is `name value` with a finite-or-spelled value.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.split_whitespace();
        let (name, value) = (parts.next(), parts.next());
        assert!(name.is_some() && value.is_some(), "malformed line: {line}");
        assert_eq!(parts.next(), None, "trailing tokens: {line}");
    }

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"));
    assert!(health.ends_with("ok\n"));

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"));

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "shutdown must release the port"
    );
}
